#include "legal/tetris.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/log.h"

namespace complx {

namespace {

/// Occupied-interval bookkeeping for one row: map from interval start to
/// interval end, non-overlapping and merged.
class RowSpace {
 public:
  RowSpace(double xl, double xh) : xl_(xl), xh_(xh) {}

  /// Marks [a, b] occupied (merging neighbours).
  void block(double a, double b) {
    a = std::max(a, xl_);
    b = std::min(b, xh_);
    if (b <= a) return;
    auto it = occ_.lower_bound(a);
    if (it != occ_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= a) it = prev;
    }
    while (it != occ_.end() && it->first <= b) {
      a = std::min(a, it->first);
      b = std::max(b, it->second);
      it = occ_.erase(it);
    }
    occ_.emplace(a, b);
  }

  /// Best site-aligned x (left edge) for a cell of `width` near `target_x`;
  /// returns infinity if no gap fits.
  double find_spot(double width, double target_x, double site_origin,
                   double site_width) const {
    double best = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
    auto consider_gap = [&](double gl, double gh) {
      if (gh - gl < width - 1e-9) return;
      double x = std::clamp(target_x, gl, gh - width);
      // Snap to the site lattice without leaving the gap.
      x = site_origin + std::round((x - site_origin) / site_width) *
                            site_width;
      if (x < gl - 1e-9) x += site_width;
      if (x + width > gh + 1e-9) x -= site_width;
      if (x < gl - 1e-9 || x + width > gh + 1e-9) return;
      const double cost = std::abs(x - target_x);
      if (cost < best_cost) {
        best_cost = cost;
        best = x;
      }
    };

    if (occ_.empty()) {
      consider_gap(xl_, xh_);
      return best;
    }
    // Gap before the first interval, between intervals, after the last.
    // Scan only intervals near target_x: start at lower_bound and walk a
    // bounded window both ways (costs grow monotonically with distance).
    auto it = occ_.lower_bound(target_x);
    auto scan = [&](std::map<double, double>::const_iterator from,
                    bool forward) {
      auto cur = from;
      for (int steps = 0; steps < 64; ++steps) {
        double gl, gh;
        if (forward) {
          gl = cur->second;
          auto nxt = std::next(cur);
          gh = nxt == occ_.end() ? xh_ : nxt->first;
        } else {
          gh = cur->first;
          gl = cur == occ_.begin() ? xl_ : std::prev(cur)->second;
        }
        consider_gap(gl, gh);
        // Early exit: once the nearest edge of the gap is farther than the
        // best cost, later gaps can only be worse.
        const double edge_dist =
            forward ? std::max(0.0, gl - target_x)
                    : std::max(0.0, target_x - gh);
        if (edge_dist > best_cost) break;
        if (forward) {
          ++cur;
          if (cur == occ_.end()) break;
        } else {
          if (cur == occ_.begin()) break;
          --cur;
        }
      }
    };
    if (it != occ_.end()) scan(it, true);
    if (it != occ_.begin()) scan(std::prev(it), false);
    // Also the gap straddling target (between prev's end and it's start).
    {
      const double gl = it == occ_.begin() ? xl_ : std::prev(it)->second;
      const double gh = it == occ_.end() ? xh_ : it->first;
      consider_gap(gl, gh);
    }
    return best;
  }

 private:
  double xl_, xh_;
  std::map<double, double> occ_;
};

}  // namespace

TetrisLegalizer::TetrisLegalizer(const Netlist& nl, LegalizeOptions opts)
    : nl_(nl), opts_(opts) {}

LegalizeResult TetrisLegalizer::legalize(Placement& p) const {
  LegalizeResult result;
  const std::vector<Row>& rows = nl_.rows();
  if (rows.empty()) {
    log_error("legalizer: netlist has no rows");
    return result;
  }
  const double row_h = rows.front().height;
  const double y0 = rows.front().y;

  std::vector<RowSpace> spaces;
  spaces.reserve(rows.size());
  for (const Row& r : rows) spaces.emplace_back(r.xl, r.xh);

  auto row_index_of = [&](double y) {
    const long k = std::lround((y - y0) / row_h);
    return std::clamp<long>(k, 0, static_cast<long>(rows.size()) - 1);
  };
  auto block_rect = [&](const Rect& r) {
    if (r.yh <= y0 || r.yl >= rows.back().y + row_h) return;
    const long j0 = row_index_of(r.yl + 1e-9);
    const long j1 = row_index_of(r.yh - 1e-9);
    for (long j = j0; j <= j1; ++j) {
      const Row& row = rows[static_cast<size_t>(j)];
      // Only block if the rect vertically overlaps this row.
      if (r.yl < row.y + row.height - 1e-9 && r.yh > row.y + 1e-9)
        spaces[static_cast<size_t>(j)].block(r.xl, r.xh);
    }
  };

  for (const Cell& c : nl_.cells())
    if (!c.movable()) block_rect(c.bounds());

  // ---- movable macros: largest first, spiral search ----------------------
  std::vector<CellId> macros, std_cells;
  for (CellId id : nl_.movable_cells()) {
    (nl_.cell(id).is_macro() ? macros : std_cells).push_back(id);
  }
  // Ties broken by id: std::sort is unstable, so equal keys would otherwise
  // leave the placement order (and thus the result) implementation-defined.
  std::sort(macros.begin(), macros.end(), [&](CellId a, CellId b) {
    const double aa = nl_.cell(a).area(), ab = nl_.cell(b).area();
    if (aa > ab) return true;
    if (ab > aa) return false;
    return a < b;
  });

  // Track placed macro rectangles for overlap checks.
  std::vector<Rect> placed_macros;
  for (const Cell& c : nl_.cells())
    if (!c.movable()) placed_macros.push_back(c.bounds());

  const Rect& core = nl_.core();
  for (CellId id : macros) {
    const Cell& c = nl_.cell(id);
    const double tx = p.x[id] - c.width / 2.0;
    const double ty = p.y[id] - c.height / 2.0;
    bool placed = false;
    Rect spot;
    // Expanding lattice search around the target, step = one row height.
    for (int radius = 0; radius < 400 && !placed; ++radius) {
      for (int dy = -radius; dy <= radius && !placed; ++dy) {
        for (int dx = -radius; dx <= radius && !placed; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          const double site_w = rows.front().site_width;
          double x = tx + dx * row_h;
          double y = y0 + std::round((ty + dy * row_h - y0) / row_h) * row_h;
          x = std::clamp(x, core.xl, std::max(core.xl, core.xh - c.width));
          x = core.xl + std::floor((x - core.xl) / site_w) * site_w;
          y = std::clamp(y, core.yl, std::max(core.yl, core.yh - c.height));
          y = y0 + std::round((y - y0) / row_h) * row_h;
          const Rect cand{x, y, x + c.width, y + c.height};
          bool clash = false;
          for (const Rect& r : placed_macros)
            if (r.overlaps(cand)) {
              clash = true;
              break;
            }
          if (!clash) {
            spot = cand;
            placed = true;
          }
        }
      }
    }
    if (!placed) {
      ++result.failed;
      const std::string_view nm = nl_.cell_name(id);
      log_warn("legalizer: macro %.*s could not be placed",
               static_cast<int>(nm.size()), nm.data());
      continue;
    }
    placed_macros.push_back(spot);
    block_rect(spot);
    const double disp = std::abs(spot.xl - tx) + std::abs(spot.yl - ty);
    result.total_displacement += disp;
    result.max_displacement = std::max(result.max_displacement, disp);
    p.x[id] = spot.center().x;
    p.y[id] = spot.center().y;
    ++result.placed;
  }

  // ---- standard cells: x-sorted greedy fill ------------------------------
  std::sort(std_cells.begin(), std_cells.end(), [&](CellId a, CellId b) {
    if (p.x[a] < p.x[b]) return true;
    if (p.x[b] < p.x[a]) return false;
    return a < b;  // deterministic order for coincident cells
  });

  for (CellId id : std_cells) {
    const Cell& c = nl_.cell(id);
    const double tx = p.x[id] - c.width / 2.0;
    const double ty = p.y[id] - c.height / 2.0;
    const long target_row = row_index_of(ty);

    double best_cost = std::numeric_limits<double>::infinity();
    double best_x = 0.0;
    long best_row = -1;
    int radius = std::max(1, opts_.row_search_radius);
    while (true) {
      for (long dj = -radius; dj <= radius; ++dj) {
        const long j = target_row + dj;
        if (j < 0 || j >= static_cast<long>(rows.size())) continue;
        const Row& row = rows[static_cast<size_t>(j)];
        const double dy = std::abs(row.y - ty);
        if (dy >= best_cost) continue;
        const double x = spaces[static_cast<size_t>(j)].find_spot(
            c.width, tx, row.xl, row.site_width);
        if (!std::isfinite(x)) continue;
        const double cost = std::abs(x - tx) + dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_x = x;
          best_row = j;
        }
      }
      if (best_row >= 0 || radius >= static_cast<int>(rows.size())) break;
      radius *= 2;
    }

    if (best_row < 0) {
      ++result.failed;
      const std::string_view nm = nl_.cell_name(id);
      log_warn("legalizer: no spot for cell %.*s", static_cast<int>(nm.size()),
               nm.data());
      continue;
    }
    const Row& row = rows[static_cast<size_t>(best_row)];
    spaces[static_cast<size_t>(best_row)].block(best_x, best_x + c.width);
    result.total_displacement += best_cost;
    result.max_displacement = std::max(result.max_displacement, best_cost);
    p.x[id] = best_x + c.width / 2.0;
    p.y[id] = row.y + c.height / 2.0;
    ++result.placed;
  }
  return result;
}

bool TetrisLegalizer::is_legal(const Netlist& nl, const Placement& p,
                               double tol) {
  // O(n log n) sweep: sort movable rectangles by x, check pairwise overlap
  // within a sliding window; also check row alignment and core containment.
  const std::vector<Row>& rows = nl.rows();
  const double y0 = rows.empty() ? nl.core().yl : rows.front().y;
  const double row_h = rows.empty() ? nl.row_height() : rows.front().height;

  std::vector<Rect> rects;
  rects.reserve(nl.num_movable());
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    const Rect r{p.x[id] - c.width / 2.0, p.y[id] - c.height / 2.0,
                 p.x[id] + c.width / 2.0, p.y[id] + c.height / 2.0};
    if (r.xl < nl.core().xl - tol || r.xh > nl.core().xh + tol ||
        r.yl < nl.core().yl - tol || r.yh > nl.core().yh + tol)
      return false;
    const double row_off = (r.yl - y0) / row_h;
    if (std::abs(row_off - std::round(row_off)) > 1e-6) return false;
    rects.push_back(r);
  }
  // Include fixed cells inside the core for overlap checking.
  for (const Cell& c : nl.cells())
    if (!c.movable() && c.bounds().overlaps(nl.core())) {
      rects.push_back(c.bounds());
    }

  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.xl < b.xl) return true;
    if (b.xl < a.xl) return false;
    return a.yl < b.yl;  // deterministic sweep order for equal left edges
  });
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      if (rects[j].xl >= rects[i].xh - tol) break;
      const Rect shrunk{rects[j].xl + tol, rects[j].yl + tol,
                        rects[j].xh - tol, rects[j].yh - tol};
      if (!shrunk.empty() && rects[i].overlaps(shrunk)) return false;
    }
  }
  return true;
}

}  // namespace complx
