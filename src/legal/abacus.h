// Abacus legalization (Spindler, Schlichtmann, Johannes, ISPD 2008):
// minimal-movement standard-cell legalization by per-row cluster collapse.
//
// Cells are processed in x order; each is trially appended to candidate row
// segments, where clusters of abutting cells are positioned at the weighted
// mean of their members' desired locations (the closed-form minimizer of
// Σ w_i (x_i − x_i^des)² under abutment), collapsing with predecessors on
// overlap. The row with the cheapest resulting displacement wins.
//
// This is the displacement-optimal counterpart to the greedy Tetris
// legalizer (legal/tetris.h); bench_ablation_legalizer compares them.
// Movable macros are delegated to the Tetris spiral search and act as
// blockages here.
#pragma once

#include "legal/tetris.h"
#include "netlist/netlist.h"

namespace complx {

struct AbacusOptions {
  int row_search_radius = 8;  ///< initial rows examined above/below target
};

class AbacusLegalizer {
 public:
  explicit AbacusLegalizer(const Netlist& nl, AbacusOptions opts = {});

  /// Rewrites `p` with legal, site-aligned positions (fixed cells
  /// untouched). Returns the same statistics as the Tetris legalizer.
  LegalizeResult legalize(Placement& p) const;

 private:
  const Netlist& nl_;
  AbacusOptions opts_;
};

}  // namespace complx
