#include "legal/abacus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.h"

namespace complx {

namespace {

/// One free span of a row (between blockages), holding Abacus clusters.
struct Segment {
  double xl = 0.0, xh = 0.0;
  double used = 0.0;  ///< Σ widths of cells committed here

  struct Cluster {
    double e = 0.0;      ///< Σ weights
    double q = 0.0;      ///< Σ w·(desired − offset-within-cluster)
    double width = 0.0;  ///< Σ member widths
    double x = 0.0;      ///< optimal left edge (clamped)
    size_t first_cell = 0;  ///< index into Segment::cells
  };
  std::vector<Cluster> clusters;
  struct PlacedCell {
    CellId id;
    double width;
    double desired;  ///< desired left-x
  };
  std::vector<PlacedCell> cells;

  double clamp_pos(double x, double width) const {
    return std::clamp(x, xl, std::max(xl, xh - width));
  }

  /// Appends a cell, collapsing clusters; returns the cell's resulting
  /// left-x. Pure simulation when `commit` is false.
  double append(CellId id, double width, double desired, bool commit) {
    // Work on copies for simulation.
    std::vector<Cluster> work = clusters;
    Cluster nc;
    nc.e = 1.0;
    nc.q = desired;
    nc.width = width;
    nc.first_cell = cells.size();
    nc.x = clamp_pos(desired, width);
    work.push_back(nc);

    // Collapse while overlapping the predecessor.
    while (work.size() > 1) {
      Cluster& prev = work[work.size() - 2];
      Cluster& cur = work.back();
      if (prev.x + prev.width <= cur.x + 1e-9) break;
      // Merge cur into prev: members keep order; their desired positions
      // shift by prev.width within the merged cluster.
      prev.e += cur.e;
      prev.q += cur.q - cur.e * prev.width;
      prev.width += cur.width;
      work.pop_back();
      Cluster& m = work.back();
      m.x = clamp_pos(m.q / m.e, m.width);
    }

    // Resulting left-x of the appended cell: last cluster's x plus the
    // widths of the members that precede it.
    const Cluster& last = work.back();
    const double offset = last.width - width;
    const double cell_x = last.x + offset;

    if (commit) {
      clusters = std::move(work);
      cells.push_back({id, width, desired});
      used += width;
    }
    return cell_x;
  }
};

}  // namespace

AbacusLegalizer::AbacusLegalizer(const Netlist& nl, AbacusOptions opts)
    : nl_(nl), opts_(opts) {}

LegalizeResult AbacusLegalizer::legalize(Placement& p) const {
  LegalizeResult result;
  const std::vector<Row>& rows = nl_.rows();
  if (rows.empty()) {
    log_error("abacus: netlist has no rows");
    return result;
  }
  const double row_h = rows.front().height;
  const double y0 = rows.front().y;

  // ---- macros via the Tetris spiral (shared behaviour), then blockages ---
  // Delegate the whole macro phase by running Tetris on a macro-only view
  // is overkill; instead reuse Tetris for everything if macros exist is
  // wasteful too. Simplest correct approach: place macros greedily exactly
  // like Tetris does, then treat them as blockages.
  std::vector<Rect> blockages;
  for (const Cell& c : nl_.cells())
    if (!c.movable()) blockages.push_back(c.bounds());

  std::vector<CellId> macros, std_cells;
  for (CellId id : nl_.movable_cells())
    (nl_.cell(id).is_macro() ? macros : std_cells).push_back(id);
  // Ties broken by id: std::sort is unstable, so equal keys would otherwise
  // leave the placement order (and thus the result) implementation-defined.
  std::sort(macros.begin(), macros.end(), [&](CellId a, CellId b) {
    const double aa = nl_.cell(a).area(), ab = nl_.cell(b).area();
    if (aa > ab) return true;
    if (ab > aa) return false;
    return a < b;
  });
  const Rect& core = nl_.core();
  for (CellId id : macros) {
    const Cell& c = nl_.cell(id);
    const double tx = p.x[id] - c.width / 2.0;
    const double ty = p.y[id] - c.height / 2.0;
    bool placed = false;
    for (int radius = 0; radius < 400 && !placed; ++radius) {
      for (int dy = -radius; dy <= radius && !placed; ++dy) {
        for (int dx = -radius; dx <= radius && !placed; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          double x = std::clamp(tx + dx * row_h, core.xl,
                                std::max(core.xl, core.xh - c.width));
          x = core.xl + std::floor((x - core.xl) /
                                   rows.front().site_width) *
                            rows.front().site_width;
          double y = y0 + std::round((ty + dy * row_h - y0) / row_h) * row_h;
          y = std::clamp(y, core.yl, std::max(core.yl, core.yh - c.height));
          y = y0 + std::round((y - y0) / row_h) * row_h;
          const Rect cand{x, y, x + c.width, y + c.height};
          bool clash = false;
          for (const Rect& r : blockages)
            if (r.overlaps(cand)) {
              clash = true;
              break;
            }
          if (!clash) {
            blockages.push_back(cand);
            const double disp = std::abs(x - tx) + std::abs(y - ty);
            result.total_displacement += disp;
            result.max_displacement =
                std::max(result.max_displacement, disp);
            p.x[id] = cand.center().x;
            p.y[id] = cand.center().y;
            ++result.placed;
            placed = true;
          }
        }
      }
    }
    if (!placed) ++result.failed;
  }

  // ---- segments per row from blockages ------------------------------------
  std::vector<std::vector<Segment>> segs(rows.size());
  for (size_t j = 0; j < rows.size(); ++j) {
    const Row& row = rows[j];
    // Collect blocked intervals for this row.
    std::vector<std::pair<double, double>> blocked;
    for (const Rect& r : blockages) {
      if (r.yl < row.y + row.height - 1e-9 && r.yh > row.y + 1e-9 &&
          r.xh > row.xl && r.xl < row.xh)
        blocked.push_back({std::max(r.xl, row.xl), std::min(r.xh, row.xh)});
    }
    std::sort(blocked.begin(), blocked.end());
    double cursor = row.xl;
    for (const auto& [bl, bh] : blocked) {
      if (bl > cursor + 1e-9) {
        Segment sg;
        sg.xl = cursor;
        sg.xh = bl;
        segs[j].push_back(std::move(sg));
      }
      cursor = std::max(cursor, bh);
    }
    if (cursor < row.xh - 1e-9) {
      Segment sg;
      sg.xl = cursor;
      sg.xh = row.xh;
      segs[j].push_back(std::move(sg));
    }
  }

  // ---- Abacus insertion over x-sorted standard cells ----------------------
  std::sort(std_cells.begin(), std_cells.end(), [&](CellId a, CellId b) {
    if (p.x[a] < p.x[b]) return true;
    if (p.x[b] < p.x[a]) return false;
    return a < b;  // deterministic order for coincident cells
  });

  for (CellId id : std_cells) {
    const Cell& c = nl_.cell(id);
    const double tx = p.x[id] - c.width / 2.0;
    const double ty = p.y[id] - c.height / 2.0;
    const long target_row = std::clamp<long>(
        std::lround((ty - y0) / row_h), 0,
        static_cast<long>(rows.size()) - 1);

    double best_cost = std::numeric_limits<double>::infinity();
    long best_row = -1;
    size_t best_seg = 0;
    int radius = std::max(1, opts_.row_search_radius);
    while (true) {
      for (long dj = -radius; dj <= radius; ++dj) {
        const long j = target_row + dj;
        if (j < 0 || j >= static_cast<long>(rows.size())) continue;
        const double dy = std::abs(rows[static_cast<size_t>(j)].y - ty);
        if (dy >= best_cost) continue;
        for (size_t s = 0; s < segs[static_cast<size_t>(j)].size(); ++s) {
          Segment& seg = segs[static_cast<size_t>(j)][s];
          if (seg.used + c.width > seg.xh - seg.xl + 1e-9) continue;
          // Quick reject: segment far from target in x.
          const double dx_bound =
              tx < seg.xl ? seg.xl - tx
                          : (tx > seg.xh - c.width ? tx - (seg.xh - c.width)
                                                   : 0.0);
          if (dx_bound + dy >= best_cost) continue;
          const double x = seg.append(id, c.width, tx, /*commit=*/false);
          const double cost = std::abs(x - tx) + dy;
          if (cost < best_cost) {
            best_cost = cost;
            best_row = j;
            best_seg = s;
          }
        }
      }
      if (best_row >= 0 || radius >= static_cast<int>(rows.size())) break;
      radius *= 2;
    }

    if (best_row < 0) {
      ++result.failed;
      const std::string_view nm = nl_.cell_name(id);
      log_warn("abacus: no segment for cell %.*s", static_cast<int>(nm.size()),
               nm.data());
      continue;
    }
    segs[static_cast<size_t>(best_row)][best_seg].append(id, c.width, tx,
                                                         /*commit=*/true);
    ++result.placed;
  }

  // ---- final positions from cluster solutions -----------------------------
  for (size_t j = 0; j < rows.size(); ++j) {
    const Row& row = rows[j];
    for (Segment& seg : segs[j]) {
      // A running cursor guarantees clusters stay disjoint even after site
      // alignment (cell widths are site multiples in practice; the cursor
      // covers the general case too).
      double cursor = seg.xl;
      for (size_t ci = 0; ci < seg.clusters.size(); ++ci) {
        const Segment::Cluster& cl = seg.clusters[ci];
        const size_t end = ci + 1 < seg.clusters.size()
                               ? seg.clusters[ci + 1].first_cell
                               : seg.cells.size();
        // Site-align the cluster start inside the segment, after cursor.
        double x = std::max(seg.clamp_pos(cl.x, cl.width), cursor);
        x = row.xl +
            std::round((x - row.xl) / row.site_width) * row.site_width;
        if (x + 1e-9 < cursor) x += row.site_width;  // keep disjoint
        x = std::min(x, seg.xh - cl.width);
        x = std::max(x, cursor);
        for (size_t k = cl.first_cell; k < end; ++k) {
          const Segment::PlacedCell& pc = seg.cells[k];
          const double disp =
              std::abs(x - pc.desired) +
              std::abs(row.y -
                       (p.y[pc.id] - nl_.cell(pc.id).height / 2.0));
          result.total_displacement += disp;
          result.max_displacement = std::max(result.max_displacement, disp);
          p.x[pc.id] = x + pc.width / 2.0;
          p.y[pc.id] = row.y + nl_.cell(pc.id).height / 2.0;
          x += pc.width;
        }
        cursor = x;
      }
    }
  }
  return result;
}

}  // namespace complx
