// Row-based legalization (Tetris/greedy): snaps the global-placement result
// to non-overlapping, site- and row-aligned positions with small
// displacement. Movable macros are placed first (largest area first, spiral
// search for a conflict-free spot) and become blockages for the standard
// cells, which are then packed greedily in x-order into per-row free gaps.
//
// The paper's flow hands P_C's anchors to FastPlace-DP, which legalizes and
// refines; this module is the legalization half of that substrate.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct LegalizeOptions {
  /// Rows to search above/below the target row before giving up on a
  /// low-displacement spot (the search widens automatically if needed).
  int row_search_radius = 8;
};

struct LegalizeResult {
  size_t placed = 0;
  size_t failed = 0;  ///< cells that found no gap (should be 0 if area fits)
  double total_displacement = 0.0;
  double max_displacement = 0.0;
};

class TetrisLegalizer {
 public:
  explicit TetrisLegalizer(const Netlist& nl, LegalizeOptions opts = {});

  /// Rewrites `p` with legal center positions. Fixed cells untouched.
  LegalizeResult legalize(Placement& p) const;

  /// Verification helper: true when no two placed rectangles overlap and
  /// all movable cells are row/site aligned inside the core.
  static bool is_legal(const Netlist& nl, const Placement& p,
                       double tol = 1e-6);

 private:
  const Netlist& nl_;
  LegalizeOptions opts_;
};

}  // namespace complx
