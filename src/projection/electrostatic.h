// Field-directed feasibility projection — the "electrostatic" backend.
//
// Instead of cut-based region spreading, cells diffuse along the Poisson
// field of the FFT density model (density/electrostatic.h): each sweep
// solves ∇²ψ = −ρ for the current positions and moves every cell a bounded
// step along E = −∇ψ (charge flows from crowded bins toward whitespace, the
// ePlace picture with the gradient applied directly instead of through
// Nesterov's method). Sweeps stop when the hard bin overflow drops under a
// threshold or the budget runs out; region snapping, alignment snapping and
// the Π = L1-displacement readback then match the spread backend exactly,
// so the driver's dual update sees the same contract from both.
#pragma once

#include <memory>

#include "density/electrostatic.h"
#include "density/grid.h"
#include "netlist/netlist.h"
#include "projection/backend.h"

namespace complx {

class ElectrostaticProjection : public ProjectionBackend {
 public:
  ElectrostaticProjection(const Netlist& nl, const ProjectionOptions& opts);

  const char* name() const override { return "electrostatic"; }

  ProjectionResult project(const Placement& p,
                           bool export_shreds = false) const override;

  void set_grid(size_t bins_x, size_t bins_y) override;
  void set_inflation(Vec area_factors) override;
  size_t bins_x() const override { return opts_.bins_x; }
  size_t bins_y() const override { return opts_.bins_y; }
  const ProjectionOptions& options() const override { return opts_; }
  void invalidate_grid_cache() override;

  size_t density_clamped_cells() const override;

 private:
  ElectrostaticDensity& ensure_model() const;
  /// Hard-overflow meter at the current resolution (true footprints against
  /// γ — the same stopping metric the spread backend reports). Cached like
  /// the LAL capacity field.
  DensityGrid& ensure_meter() const;

  const Netlist& nl_;
  ProjectionOptions opts_;
  Vec inflation_;  ///< empty = no inflation
  mutable std::unique_ptr<ElectrostaticDensity> model_;
  mutable std::unique_ptr<DensityGrid> meter_;
};

}  // namespace complx
