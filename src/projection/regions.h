// Hard region-constraint enforcement inside P_C (Section S5): after density
// spreading, every cell carrying a region constraint is snapped into its
// region box. The snapped locations become anchors, so subsequent analytic
// iterations pull connected logic toward the region — which is why HPWL
// often improves rather than degrades.
#pragma once

#include "netlist/netlist.h"

namespace complx {

/// Clamps the centers of region-constrained movable cells into their region
/// (shrunk by the cell half-dimensions so the full cell fits). Returns the
/// number of cells moved.
size_t snap_to_regions(const Netlist& nl, Placement& p);

/// True when every region-constrained movable cell lies fully inside its
/// region under placement `p` (within `tol`).
bool regions_satisfied(const Netlist& nl, const Placement& p,
                       double tol = 1e-9);

}  // namespace complx
