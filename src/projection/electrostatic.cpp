#include "projection/electrostatic.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "projection/lal.h"
#include "projection/regions.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace complx {

namespace {
/// Diffusion schedule: each sweep moves cells at most kStepFrac of a bin
/// edge (larger steps overshoot the field and oscillate), for at most
/// kMaxSweeps sweeps or until overflow drops under kStopOverflow or stalls
/// for kStallSweeps sweeps in a row.
constexpr double kStepFrac = 0.8;
constexpr int kMaxSweeps = 64;
constexpr double kStopOverflow = 0.02;
constexpr int kStallSweeps = 5;
constexpr double kStallTol = 1e-4;

/// splitmix64 finalizer mapped to [0,1): a pure function of the cell id, so
/// the symmetry-breaking offsets below are bitwise reproducible on any
/// thread count and any platform.
double hash01(uint64_t v) {
  v += 0x9E3779B97F4A7C15ull;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
  v ^= v >> 31;
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}
}  // namespace

ElectrostaticProjection::ElectrostaticProjection(const Netlist& nl,
                                                 const ProjectionOptions& opts)
    : nl_(nl), opts_(opts) {
  if (opts_.bins_x == 0 || opts_.bins_y == 0) {
    const size_t b = LookAheadLegalizer::auto_bins(nl);
    opts_.bins_x = b;
    opts_.bins_y = b;
  }
}

ElectrostaticDensity& ElectrostaticProjection::ensure_model() const {
  if (!model_) {
    ElectrostaticOptions eo;
    eo.bins = std::max(opts_.bins_x, opts_.bins_y);
    eo.grid = opts_.density;
    model_ = std::make_unique<ElectrostaticDensity>(nl_, eo);
  }
  return *model_;
}

DensityGrid& ElectrostaticProjection::ensure_meter() const {
  const size_t b = ensure_model().bins();
  if (!meter_ || meter_->bins_x() != b)
    meter_ = std::make_unique<DensityGrid>(nl_, b, b, opts_.density);
  return *meter_;
}

void ElectrostaticProjection::set_grid(size_t bins_x, size_t bins_y) {
  opts_.bins_x = std::max<size_t>(1, bins_x);
  opts_.bins_y = std::max<size_t>(1, bins_y);
  // The model rounds to its power-of-two transform length and keeps its
  // capacity cache when that length is unchanged (the steady state of the
  // driver's refinement schedule); the meter follows the model.
  ensure_model().set_bins(std::max(opts_.bins_x, opts_.bins_y));
}

void ElectrostaticProjection::set_inflation(Vec area_factors) {
  if (!area_factors.empty() && area_factors.size() != nl_.num_cells())
    throw std::invalid_argument("inflation vector size mismatch");
  inflation_ = std::move(area_factors);
  // Inflation scales the deposited charge per solve — no cached state to
  // drop (the capacity field does not depend on movable area).
}

void ElectrostaticProjection::invalidate_grid_cache() {
  model_.reset();
  meter_.reset();
}

size_t ElectrostaticProjection::density_clamped_cells() const {
  return model_ ? model_->stats().clamped_cells : 0;
}

ProjectionResult ElectrostaticProjection::project(const Placement& p,
                                                  bool export_shreds) const {
  (void)export_shreds;  // no shred clouds: macros ride the field whole
  ProjectionResult result;
  Timer phase;

  ElectrostaticDensity& model = ensure_model();
  DensityGrid& meter = ensure_meter();
  const size_t M = model.bins();
  const Rect& core = nl_.core();
  const std::vector<CellId>& movable = nl_.movable_cells();
  const double movable_area = std::max(nl_.movable_area(), 1e-12);

  auto hard_overflow = [&](const Placement& w) {
    meter.build(w);
    return meter.total_overflow(opts_.gamma) / movable_area;
  };

  result.input_overflow_ratio = hard_overflow(p);
  result.timers.grid_build_s = phase.seconds();
  phase.reset();

  Placement w = p;
  const auto clamp_into_core = [&](CellId id, double nx, double ny) {
    const Cell& c = nl_.cell(id);
    w.x[id] = std::clamp(
        nx, core.xl + c.width / 2.0,
        std::max(core.xl + c.width / 2.0, core.xh - c.width / 2.0));
    w.y[id] = std::clamp(
        ny, core.yl + c.height / 2.0,
        std::max(core.yl + c.height / 2.0, core.yh - c.height / 2.0));
  };

  // Symmetry breaking: a degenerate input can stack many cells on one exact
  // coordinate (a pile). Identical positions sample identical fields, so the
  // stack would translate rigidly forever instead of spreading. Cells sitting
  // in overfilled bins are first teased apart by a deterministic per-cell
  // offset of up to half a bin; legal-density bins are left untouched, so an
  // already-feasible placement picks up zero extra displacement. The meter
  // still holds the input usage from the overflow measurement above.
  if (result.input_overflow_ratio > kStopOverflow) {
    const double mbw = meter.bin_width();
    const double mbh = meter.bin_height();
    parallel_for(movable.size(), [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const CellId id = movable[k];
        const size_t i = meter.bin_x_of(w.x[id]);
        const size_t j = meter.bin_y_of(w.y[id]);
        if (meter.usage(i, j) <= opts_.gamma * meter.capacity(i, j)) continue;
        const uint64_t h = static_cast<uint64_t>(id);
        clamp_into_core(id,
                        w.x[id] + (hash01(2 * h) - 0.5) * mbw,
                        w.y[id] + (hash01(2 * h + 1) - 0.5) * mbh);
      }
    });
  }

  // Diffusion sweeps: solve the field at the working placement, step every
  // cell along its bilinearly interpolated E, repeat. The step magnitude is
  // kStepFrac·bin·√(|E|/|E|max): capped at a fraction of a bin for the
  // strongest mover, while the √ keeps the weak interior of a cluster
  // moving instead of freezing it. All per-cell writes are index-owned and
  // the normalization comes from a serial bin-order max, so the sweep
  // trajectory is bitwise identical at any thread count.
  const Vec* infl = inflation_.empty() ? nullptr : &inflation_;
  double overflow = hard_overflow(w);
  double best_overflow = overflow;
  int stalled = 0;
  int sweeps = 0;
  for (; sweeps < kMaxSweeps && overflow > kStopOverflow &&
         stalled < kStallSweeps;
       ++sweeps) {
    model.solve_field(w, infl);
    const std::vector<double>& ex = model.field_x();
    const std::vector<double>& ey = model.field_y();
    double emax = 0.0;
    for (size_t k = 0; k < M * M; ++k)
      emax = std::max(emax, std::hypot(ex[k], ey[k]));
    if (!(emax > 0.0)) break;  // field flat (or non-finite): nothing to do
    const double step =
        kStepFrac * std::min(model.bin_width(), model.bin_height());
    const double bw = model.bin_width();
    const double bh = model.bin_height();
    const long last = static_cast<long>(M) - 1;
    // Bilinear sample of a bin-center field at a continuous point; edge
    // bins extend flat past the core boundary.
    const auto sample = [&](const std::vector<double>& f, double x,
                            double y) {
      const double u = (x - core.xl) / bw - 0.5;
      const double v = (y - core.yl) / bh - 0.5;
      const double fu = std::floor(u);
      const double fv = std::floor(v);
      const long i0 = std::clamp(static_cast<long>(fu), 0L, last);
      const long j0 = std::clamp(static_cast<long>(fv), 0L, last);
      const long i1 = std::min(i0 + 1, last);
      const long j1 = std::min(j0 + 1, last);
      const double tx = std::clamp(u - fu, 0.0, 1.0);
      const double ty = std::clamp(v - fv, 0.0, 1.0);
      const size_t r0 = static_cast<size_t>(j0) * M;
      const size_t r1 = static_cast<size_t>(j1) * M;
      return (1.0 - ty) * ((1.0 - tx) * f[r0 + static_cast<size_t>(i0)] +
                           tx * f[r0 + static_cast<size_t>(i1)]) +
             ty * ((1.0 - tx) * f[r1 + static_cast<size_t>(i0)] +
                   tx * f[r1 + static_cast<size_t>(i1)]);
    };
    parallel_for(movable.size(), [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const CellId id = movable[k];
        const double exc = sample(ex, w.x[id], w.y[id]);
        const double eyc = sample(ey, w.x[id], w.y[id]);
        const double e = std::hypot(exc, eyc);
        if (!(e > 0.0)) continue;
        const double scale = step * std::sqrt(e / emax) / e;
        clamp_into_core(id, w.x[id] + scale * exc, w.y[id] + scale * eyc);
      }
    });
    overflow = hard_overflow(w);
    if (overflow < best_overflow - kStallTol) {
      best_overflow = overflow;
      stalled = 0;
    } else {
      ++stalled;
    }
  }
  result.num_regions = static_cast<size_t>(sweeps);  // sweeps stand in for
                                                     // regions in the trace
  result.timers.spread_s = phase.seconds();
  phase.reset();

  // Readback: same post-processing contract as the spread backend.
  result.anchors = std::move(w);
  if (opts_.enforce_regions && !nl_.regions().empty())
    snap_to_regions(nl_, result.anchors);
  if (!opts_.alignments.empty())
    snap_to_alignments(nl_, opts_.alignments, result.anchors);

  double pi = 0.0;
  for (CellId id : movable)
    pi += std::abs(p.x[id] - result.anchors.x[id]) +
          std::abs(p.y[id] - result.anchors.y[id]);
  result.displacement_l1 = pi;
  result.timers.readback_s = phase.seconds();
  return result;
}

}  // namespace complx
