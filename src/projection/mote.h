// A "mote" is the atomic unit the feasibility projection spreads: one
// standard cell, or one shred of a macro (Section 5, macro shredding).
// Motes carry their own geometry so the projection never needs to know
// whether it is moving a cell or a shred.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct Mote {
  double x = 0.0;  ///< center x
  double y = 0.0;  ///< center y
  double width = 0.0;
  double height = 0.0;
  CellId owner = 0;  ///< cell this mote represents (shreds share an owner)

  double area() const { return width * height; }
  Rect bounds() const {
    return {x - width / 2.0, y - height / 2.0, x + width / 2.0,
            y + height / 2.0};
  }
};

}  // namespace complx
