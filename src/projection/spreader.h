// Top-down geometric partitioning with 1-D spreading — the computational
// core of the feasibility projection P_C (paper Section 5 and S2).
//
// Within a spreading region, cells are recursively bipartitioned at their
// area median; the region is cut where the *capacity* (γ-scaled free area)
// splits in the same proportion, and cell coordinates are piecewise-linearly
// rescaled into their side. Relative order along the cut axis is preserved
// at every step — this is what makes each pass a convex optimization in the
// neighbor-distance variables δ_i (Section S2) and underlies the projection's
// empirical self-consistency.
#pragma once

#include <vector>

#include "density/grid.h"
#include "projection/mote.h"

namespace complx {

struct SpreaderOptions {
  double gamma = 1.0;       ///< target utilization within the region
  int terminal_motes = 24;  ///< stop recursion at this many motes
  int max_depth = 48;
};

class Spreader {
 public:
  /// `grid` provides the capacity field (fixed blockage already subtracted).
  Spreader(const DensityGrid& grid, const SpreaderOptions& opts)
      : grid_(grid), opts_(opts) {}

  /// Spreads the given motes (in place) so their density inside `region`
  /// approaches uniform γ-utilization. Motes must have centers in `region`.
  void spread(const Rect& region, std::vector<Mote*>& motes) const;

 private:
  void recurse(const Rect& region, std::vector<Mote*>& motes,
               int depth) const;
  void terminal_spread(const Rect& region, std::vector<Mote*>& motes) const;

  const DensityGrid& grid_;
  SpreaderOptions opts_;
};

}  // namespace complx
