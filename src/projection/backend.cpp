#include "projection/backend.h"

#include <stdexcept>
#include <utility>

#include "projection/electrostatic.h"
#include "projection/lal.h"

namespace complx {

namespace {

struct Registry {
  /// Append-only (name, factory) list: deterministic iteration order and no
  /// static-initialization-order hazards (function-local static).
  std::vector<std::pair<std::string, ProjectionBackendFactory>> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::unique_ptr<ProjectionBackend> make_spread(const Netlist& nl,
                                               const ProjectionOptions& o) {
  return std::make_unique<LookAheadLegalizer>(nl, o);
}

std::unique_ptr<ProjectionBackend> make_electrostatic(
    const Netlist& nl, const ProjectionOptions& o) {
  return std::make_unique<ElectrostaticProjection>(nl, o);
}

void ensure_builtins() {
  Registry& r = registry();
  if (!r.entries.empty()) return;
  r.entries.emplace_back("spread", &make_spread);
  r.entries.emplace_back("electrostatic", &make_electrostatic);
}

ProjectionBackendFactory find(const std::string& name) {
  ensure_builtins();
  const Registry& r = registry();
  // Latest registration wins so tests can shadow a built-in.
  for (auto it = r.entries.rbegin(); it != r.entries.rend(); ++it)
    if (it->first == name) return it->second;
  return nullptr;
}

}  // namespace

void register_projection_backend(const std::string& name,
                                 ProjectionBackendFactory factory) {
  ensure_builtins();
  registry().entries.emplace_back(name, factory);
}

std::unique_ptr<ProjectionBackend> make_projection_backend(
    const std::string& name, const Netlist& nl,
    const ProjectionOptions& opts) {
  if (ProjectionBackendFactory f = find(name)) return f(nl, opts);
  std::string known;
  for (const std::string& n : projection_backend_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown projection backend '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> projection_backend_names() {
  ensure_builtins();
  std::vector<std::string> names;
  for (const auto& e : registry().entries) {
    bool seen = false;
    for (const std::string& n : names) seen = seen || n == e.first;
    if (!seen) names.push_back(e.first);
  }
  return names;
}

}  // namespace complx
