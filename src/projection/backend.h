// ProjectionBackend — the pluggable feasibility projection P_C behind the
// ComPLx driver loop.
//
// Two families implement it:
//   "spread"         geometric look-ahead legalization (projection/lal.h):
//                    overfilled-region search + cut-based spreading, the
//                    projection of the source paper, and
//   "electrostatic"  field-directed diffusion (projection/electrostatic.h):
//                    cells ride the Poisson field E = −∇ψ of the FFT density
//                    model until bin overflow dissipates.
//
// Both produce the same contract: a C-feasible(-ish) anchor placement whose
// L1 displacement from the iterate is the penalty value Π of Formula 3. The
// driver selects a backend by name (ComplxConfig::density_backend,
// complx_place --density-backend) through the registry below; registration
// is a deterministic append-only vector, never an unordered container (lint
// rule D1 discipline).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "density/grid.h"
#include "netlist/netlist.h"
#include "projection/alignment.h"
#include "projection/mote.h"
#include "projection/shredder.h"
#include "projection/spreader.h"

namespace complx {

struct ProjectionOptions {
  double gamma = 1.0;  ///< target utilization (ISPD 2006: 0.5 / 0.8 / 0.9)
  size_t bins_x = 0;   ///< 0 = derive from design size
  size_t bins_y = 0;
  SpreaderOptions spreader;  ///< gamma is overwritten from this struct
  ShredderOptions shredder;  ///< gamma is overwritten from this struct
  DensityOptions density;    ///< grid query mode (prefix sums on/off)
  bool enforce_regions = true;
  /// Alignment groups enforced by the projection (after density spreading
  /// and region snapping).
  std::vector<AlignmentGroup> alignments;
};

/// Wall-clock split of one project() call. The placer accumulates these
/// into SolverStats; `complx_place --stats` prints the totals.
struct ProjectionTimers {
  double grid_build_s = 0.0;    ///< mote materialization + density deposit
  double region_find_s = 0.0;   ///< region search + mote→region ownership
  double spread_s = 0.0;        ///< per-region spreading / field sweeps
  double readback_s = 0.0;      ///< anchors, region/alignment snap, Π
};

struct ProjectionResult {
  Placement anchors;        ///< the C-feasible(-ish) projection P_C(x, y)
  double displacement_l1 = 0.0;  ///< Π: Σ_movable |x−x°| + |y−y°|
  size_t num_regions = 0;        ///< spreading regions processed
  /// Density overflow of the INPUT placement: Σ bin overflow above γ,
  /// divided by total movable area. The classic SimPL stopping metric.
  double input_overflow_ratio = 0.0;
  /// Shred clouds after spreading (only filled when export_shreds=true);
  /// used by the Figure 2 reproduction.
  std::vector<Mote> shreds;
  std::vector<Point> shred_origins;
  ProjectionTimers timers;  ///< phase split of this call
};

/// A feasibility projection: P_C at a placement, with the grid-resolution
/// schedule and routability-inflation hooks the driver exercises.
/// Implementations cache their fixed-blockage grid and are NOT thread-safe
/// across concurrent calls on one instance.
class ProjectionBackend {
 public:
  virtual ~ProjectionBackend() = default;

  /// Registered backend name ("spread", "electrostatic", ...).
  virtual const char* name() const = 0;

  /// Computes P_C at `p`. `p` itself is not modified.
  virtual ProjectionResult project(const Placement& p,
                                   bool export_shreds = false) const = 0;

  /// Adjusts the grid resolution (the ComPLx driver coarsens/refines the
  /// grid over iterations as a runtime/accuracy trade-off, Section 6).
  virtual void set_grid(size_t bins_x, size_t bins_y) = 0;

  /// Per-cell AREA inflation factors (SimPLR-style routability): standard
  /// cells are spread as if `factor×` larger, creating routing whitespace.
  /// Pass an empty vector to clear. Macros are unaffected.
  virtual void set_inflation(Vec area_factors) = 0;

  virtual size_t bins_x() const = 0;
  virtual size_t bins_y() const = 0;
  virtual const ProjectionOptions& options() const = 0;

  /// Drops the cached capacity field so the next project() rebuilds the
  /// fixed-cell blockage scan from scratch (benchmark/test hook; callers
  /// normally rely on set_grid/set_inflation invalidation).
  virtual void invalidate_grid_cache() = 0;

  /// Cumulative count of off-core / non-finite cell centers the backend
  /// clamped onto the core across project() calls. The driver folds this
  /// into HealthStats (the projection layer cannot include core/health).
  virtual size_t density_clamped_cells() const { return 0; }
};

using ProjectionBackendFactory = std::unique_ptr<ProjectionBackend> (*)(
    const Netlist& nl, const ProjectionOptions& opts);

/// Registers a backend under `name` (later registrations of the same name
/// win, so tests can shadow a built-in). The built-ins self-register on
/// first factory use.
void register_projection_backend(const std::string& name,
                                 ProjectionBackendFactory factory);

/// Constructs the named backend; throws std::invalid_argument for an
/// unknown name (the message lists the registered names).
std::unique_ptr<ProjectionBackend> make_projection_backend(
    const std::string& name, const Netlist& nl,
    const ProjectionOptions& opts);

/// Registered names in registration order (built-ins first).
std::vector<std::string> projection_backend_names();

}  // namespace complx
