// Identification of spreading regions for P_C: cluster overfilled bins and
// grow each cluster into the smallest rectangular bin sub-array whose total
// utilization meets the target γ (paper Section 5: "first localizes the
// changes ... to the smallest rectangular grid-cell sub-arrays that satisfy
// a given target utilization/density limit").
#pragma once

#include <vector>

#include "density/grid.h"

namespace complx {

/// Bin-aligned sub-array expressed in bin indices [i0, i1] x [j0, j1].
struct BinSpan {
  size_t i0 = 0, j0 = 0, i1 = 0, j1 = 0;
};

/// How overlapping span expansions are merged back together.
enum class RegionMergePolicy {
  /// After a merge, recheck only pairs involving the merged span (in the
  /// same lexicographic order a full restart would visit them) — O(n²)
  /// pair work total instead of O(n³), with a bitwise-identical result.
  kIncremental,
  /// Historical reference: restart the full pair scan after every merge.
  /// Kept for the region-finder stress test that asserts the incremental
  /// policy reproduces it exactly.
  kFullRescan,
};

/// Returns disjoint spreading regions (in core coordinates) that cover all
/// overfilled bins and have utilization <= gamma each (when expandable).
/// Overlapping expansions are merged and re-expanded.
std::vector<Rect> find_spreading_regions(
    const DensityGrid& grid, double gamma,
    RegionMergePolicy policy = RegionMergePolicy::kIncremental);

}  // namespace complx
