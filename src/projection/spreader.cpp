#include "projection/spreader.h"

#include <algorithm>
#include <cmath>

namespace complx {

namespace {

double coord(const Mote* m, bool horizontal) {
  return horizontal ? m->x : m->y;
}
void set_coord(Mote* m, bool horizontal, double v) {
  (horizontal ? m->x : m->y) = v;
}
double lo_edge(const Rect& r, bool horizontal) {
  return horizontal ? r.xl : r.yl;
}
double hi_edge(const Rect& r, bool horizontal) {
  return horizontal ? r.xh : r.yh;
}

/// Sub-rectangle of `r` along the chosen axis.
Rect slice(const Rect& r, bool horizontal, double lo, double hi) {
  return horizontal ? Rect{lo, r.yl, hi, r.yh} : Rect{r.xl, lo, r.xh, hi};
}

/// Strict weak order on motes along an axis with deterministic tie-breaks.
/// std::sort is unstable, so sorting on the raw coordinate alone would let
/// the relative order of coincident motes (common early on, when cells pile
/// up at the core center) depend on the implementation's pivot choices.
/// Breaking ties by owner id and then the transverse coordinate pins the
/// permutation to the input values only.
bool mote_before(const Mote* a, const Mote* b, bool horizontal) {
  const double ca = coord(a, horizontal);
  const double cb = coord(b, horizontal);
  if (ca < cb) return true;
  if (cb < ca) return false;
  if (a->owner != b->owner) return a->owner < b->owner;
  return coord(a, !horizontal) < coord(b, !horizontal);
}

}  // namespace

void Spreader::spread(const Rect& region, std::vector<Mote*>& motes) const {
  if (motes.empty() || region.empty()) return;
  recurse(region, motes, 0);
}

double Spreader::capacity_cut(const Rect& region, bool horizontal,
                              double target_capacity) const {
  // Binary search on the monotone cumulative free-area profile. 40 steps
  // bring the interval below any bin dimension.
  double lo = lo_edge(region, horizontal);
  double hi = hi_edge(region, horizontal);
  const double full_lo = lo;
  for (int it = 0; it < 40; ++it) {
    const double mid = (lo + hi) / 2.0;
    const double cap =
        opts_.gamma * grid_.free_area_in(slice(region, horizontal, full_lo, mid));
    if (cap < target_capacity)
      lo = mid;
    else
      hi = mid;
  }
  return (lo + hi) / 2.0;
}

void Spreader::recurse(const Rect& region, std::vector<Mote*>& motes,
                       int depth) const {
  if (motes.empty()) return;
  if (static_cast<int>(motes.size()) <= opts_.terminal_motes ||
      depth >= opts_.max_depth) {
    terminal_spread(region, motes);
    return;
  }

  const bool horizontal = region.width() >= region.height();
  std::sort(motes.begin(), motes.end(), [&](const Mote* a, const Mote* b) {
    return mote_before(a, b, horizontal);
  });

  // Area-median split of the cell list.
  double total_area = 0.0;
  for (const Mote* m : motes) total_area += m->area();
  size_t k = 0;
  double acc = 0.0;
  while (k < motes.size() && acc + motes[k]->area() <= total_area / 2.0)
    acc += motes[k++]->area();
  k = std::clamp<size_t>(k, 1, motes.size() - 1);
  const double area1 = acc;

  // Capacity-proportional cut line.
  const double region_cap = opts_.gamma * grid_.free_area_in(region);
  double cut;
  if (region_cap > 1e-12 && total_area > 0.0) {
    cut = capacity_cut(region, horizontal, region_cap * (area1 / total_area));
  } else {
    cut = (lo_edge(region, horizontal) + hi_edge(region, horizontal)) / 2.0;
  }
  // Keep both halves non-degenerate.
  const double lo = lo_edge(region, horizontal);
  const double hi = hi_edge(region, horizontal);
  const double min_span = (hi - lo) * 1e-3;
  cut = std::clamp(cut, lo + min_span, hi - min_span);

  // Piecewise-linear rescale around the old split coordinate. Relative
  // order is preserved because both maps are increasing.
  const double m_lo = coord(motes[k - 1], horizontal);
  const double m_hi = coord(motes[k], horizontal);
  const double knot = std::clamp((m_lo + m_hi) / 2.0, lo, hi);
  const double left_span = std::max(knot - lo, 1e-12);
  const double right_span = std::max(hi - knot, 1e-12);
  for (size_t i = 0; i < k; ++i) {
    const double t = (coord(motes[i], horizontal) - lo) / left_span;
    set_coord(motes[i], horizontal, lo + std::clamp(t, 0.0, 1.0) * (cut - lo));
  }
  for (size_t i = k; i < motes.size(); ++i) {
    const double t = (coord(motes[i], horizontal) - knot) / right_span;
    set_coord(motes[i], horizontal,
              cut + std::clamp(t, 0.0, 1.0) * (hi - cut));
  }

  std::vector<Mote*> left(motes.begin(), motes.begin() + static_cast<long>(k));
  std::vector<Mote*> right(motes.begin() + static_cast<long>(k), motes.end());
  recurse(slice(region, horizontal, lo, cut), left, depth + 1);
  recurse(slice(region, horizontal, cut, hi), right, depth + 1);
}

void Spreader::terminal_spread(const Rect& region,
                               std::vector<Mote*>& motes) const {
  // 1-D spreading along the dominant axis: each mote is placed where the
  // cumulative capacity profile reaches its cumulative-area midpoint.
  // This evens density while preserving sorted order (Section S2's convex
  // subproblem in the δ_i variables). The transverse coordinate is clamped.
  const bool horizontal = region.width() >= region.height();
  std::sort(motes.begin(), motes.end(), [&](const Mote* a, const Mote* b) {
    return mote_before(a, b, horizontal);
  });

  double total_area = 0.0;
  for (const Mote* m : motes) total_area += m->area();
  const double region_cap = opts_.gamma * grid_.free_area_in(region);

  const double lo = lo_edge(region, horizontal);
  const double hi = hi_edge(region, horizontal);

  if (total_area <= 0.0 || region_cap <= 1e-12) {
    // Nothing meaningful to even out; just clamp into the region.
    for (Mote* m : motes) {
      m->x = std::clamp(m->x, region.xl, region.xh);
      m->y = std::clamp(m->y, region.yl, region.yh);
    }
    return;
  }

  double acc = 0.0;
  for (Mote* m : motes) {
    const double midpoint = acc + m->area() / 2.0;
    acc += m->area();
    const double target_cap = region_cap * (midpoint / total_area);
    const double pos = capacity_cut(region, horizontal, target_cap);
    set_coord(m, horizontal, std::clamp(pos, lo, hi));
    // Clamp transverse coordinate into the region.
    if (horizontal)
      m->y = std::clamp(m->y, region.yl, region.yh);
    else
      m->x = std::clamp(m->x, region.xl, region.xh);
  }
}

}  // namespace complx
