#include "projection/spreader.h"

#include <algorithm>
#include <cmath>

namespace complx {

namespace {

double coord(const Mote* m, bool horizontal) {
  return horizontal ? m->x : m->y;
}
void set_coord(Mote* m, bool horizontal, double v) {
  (horizontal ? m->x : m->y) = v;
}
double lo_edge(const Rect& r, bool horizontal) {
  return horizontal ? r.xl : r.yl;
}
double hi_edge(const Rect& r, bool horizontal) {
  return horizontal ? r.xh : r.yh;
}

/// Sub-rectangle of `r` along the chosen axis.
Rect slice(const Rect& r, bool horizontal, double lo, double hi) {
  return horizontal ? Rect{lo, r.yl, hi, r.yh} : Rect{r.xl, lo, r.xh, hi};
}

/// Strict weak order on motes along an axis with deterministic tie-breaks.
/// std::sort is unstable, so sorting on the raw coordinate alone would let
/// the relative order of coincident motes (common early on, when cells pile
/// up at the core center) depend on the implementation's pivot choices.
/// Breaking ties by owner id and then the transverse coordinate pins the
/// permutation to the input values only.
bool mote_before(const Mote* a, const Mote* b, bool horizontal) {
  const double ca = coord(a, horizontal);
  const double cb = coord(b, horizontal);
  if (ca < cb) return true;
  if (cb < ca) return false;
  if (a->owner != b->owner) return a->owner < b->owner;
  return coord(a, !horizontal) < coord(b, !horizontal);
}

/// Cumulative γ-capacity along one axis of a region. Free area is uniform
/// within a bin, so the cumulative profile is piecewise linear with knots at
/// the bin boundaries; building it costs one O(1) free_area_in query per bin
/// column crossed, and inverting it is linear interpolation. This replaces
/// the historical 40-step capacity_cut bisection (which evaluated a full
/// free_area_in per step) with one exact solve per query — and an increasing
/// sequence of targets can share a monotone hint so a whole terminal-spread
/// sweep costs O(columns) total.
class CapacityProfile {
 public:
  CapacityProfile(const DensityGrid& g, const Rect& region, bool horizontal,
                  double gamma) {
    const double lo = lo_edge(region, horizontal);
    const double hi = hi_edge(region, horizontal);
    knots_.push_back(lo);
    cum_.push_back(0.0);
    if (!(hi > lo)) return;
    const size_t b0 = horizontal ? g.bin_x_of(lo) : g.bin_y_of(lo);
    const size_t b1 =
        horizontal ? g.bin_x_of(hi - 1e-12) : g.bin_y_of(hi - 1e-12);
    for (size_t b = b0; b <= b1; ++b) {
      const Rect cell = horizontal ? g.bin_rect(b, 0) : g.bin_rect(0, b);
      const double edge = std::min(hi, horizontal ? cell.xh : cell.yh);
      if (edge <= knots_.back()) continue;
      cum_.push_back(cum_.back() +
                     gamma * g.free_area_in(
                                 slice(region, horizontal, knots_.back(), edge)));
      knots_.push_back(edge);
    }
    if (knots_.back() < hi) {  // region reaches past the core: zero capacity
      knots_.push_back(hi);
      cum_.push_back(cum_.back());
    }
  }

  double total() const { return cum_.back(); }

  /// Smallest t with cum(t) >= target — the same infimum the bisection
  /// converged to, including on zero-capacity plateaus. `hint` (optional)
  /// must come from a previous call with a target no larger than this one;
  /// it persists the segment pointer across a nondecreasing target sweep.
  double invert(double target, size_t* hint = nullptr) const {
    if (knots_.size() < 2) return knots_.front();
    if (!(target > 0.0)) return knots_.front();
    size_t k = hint != nullptr ? *hint : 0;
    while (k + 2 < cum_.size() && cum_[k + 1] < target) ++k;
    if (hint != nullptr) *hint = k;
    const double seg = cum_[k + 1] - cum_[k];
    if (!(seg > 0.0)) return knots_[k];
    const double t =
        knots_[k] + (target - cum_[k]) / seg * (knots_[k + 1] - knots_[k]);
    return std::clamp(t, knots_[k], knots_[k + 1]);
  }

 private:
  std::vector<double> knots_;  ///< bin-boundary coordinates clipped to region
  std::vector<double> cum_;    ///< cumulative γ-capacity up to each knot
};

}  // namespace

void Spreader::spread(const Rect& region, std::vector<Mote*>& motes) const {
  if (motes.empty() || region.empty()) return;
  recurse(region, motes, 0);
}

void Spreader::recurse(const Rect& region, std::vector<Mote*>& motes,
                       int depth) const {
  if (motes.empty()) return;
  if (static_cast<int>(motes.size()) <= opts_.terminal_motes ||
      depth >= opts_.max_depth) {
    terminal_spread(region, motes);
    return;
  }

  const bool horizontal = region.width() >= region.height();
  std::sort(motes.begin(), motes.end(), [&](const Mote* a, const Mote* b) {
    return mote_before(a, b, horizontal);
  });

  // Area-median split of the cell list.
  double total_area = 0.0;
  for (const Mote* m : motes) total_area += m->area();
  size_t k = 0;
  double acc = 0.0;
  while (k < motes.size() && acc + motes[k]->area() <= total_area / 2.0)
    acc += motes[k++]->area();
  k = std::clamp<size_t>(k, 1, motes.size() - 1);
  const double area1 = acc;

  // Capacity-proportional cut line.
  const CapacityProfile profile(grid_, region, horizontal, opts_.gamma);
  const double region_cap = profile.total();
  double cut;
  if (region_cap > 1e-12 && total_area > 0.0) {
    cut = profile.invert(region_cap * (area1 / total_area));
  } else {
    cut = (lo_edge(region, horizontal) + hi_edge(region, horizontal)) / 2.0;
  }
  // Keep both halves non-degenerate.
  const double lo = lo_edge(region, horizontal);
  const double hi = hi_edge(region, horizontal);
  const double min_span = (hi - lo) * 1e-3;
  cut = std::clamp(cut, lo + min_span, hi - min_span);

  // Piecewise-linear rescale around the old split coordinate. Relative
  // order is preserved because both maps are increasing.
  const double m_lo = coord(motes[k - 1], horizontal);
  const double m_hi = coord(motes[k], horizontal);
  const double knot = std::clamp((m_lo + m_hi) / 2.0, lo, hi);
  const double left_span = std::max(knot - lo, 1e-12);
  const double right_span = std::max(hi - knot, 1e-12);
  for (size_t i = 0; i < k; ++i) {
    const double t = (coord(motes[i], horizontal) - lo) / left_span;
    set_coord(motes[i], horizontal, lo + std::clamp(t, 0.0, 1.0) * (cut - lo));
  }
  for (size_t i = k; i < motes.size(); ++i) {
    const double t = (coord(motes[i], horizontal) - knot) / right_span;
    set_coord(motes[i], horizontal,
              cut + std::clamp(t, 0.0, 1.0) * (hi - cut));
  }

  std::vector<Mote*> left(motes.begin(), motes.begin() + static_cast<long>(k));
  std::vector<Mote*> right(motes.begin() + static_cast<long>(k), motes.end());
  recurse(slice(region, horizontal, lo, cut), left, depth + 1);
  recurse(slice(region, horizontal, cut, hi), right, depth + 1);
}

void Spreader::terminal_spread(const Rect& region,
                               std::vector<Mote*>& motes) const {
  // 1-D spreading along the dominant axis: each mote is placed where the
  // cumulative capacity profile reaches its cumulative-area midpoint.
  // This evens density while preserving sorted order (Section S2's convex
  // subproblem in the δ_i variables). The transverse coordinate is clamped.
  const bool horizontal = region.width() >= region.height();
  std::sort(motes.begin(), motes.end(), [&](const Mote* a, const Mote* b) {
    return mote_before(a, b, horizontal);
  });

  double total_area = 0.0;
  for (const Mote* m : motes) total_area += m->area();
  const CapacityProfile profile(grid_, region, horizontal, opts_.gamma);
  const double region_cap = profile.total();

  const double lo = lo_edge(region, horizontal);
  const double hi = hi_edge(region, horizontal);

  if (total_area <= 0.0 || region_cap <= 1e-12) {
    // Nothing meaningful to even out; just clamp into the region.
    for (Mote* m : motes) {
      m->x = std::clamp(m->x, region.xl, region.xh);
      m->y = std::clamp(m->y, region.yl, region.yh);
    }
    return;
  }

  // Single monotone sweep: cumulative-area midpoints increase in sorted
  // order, so one persistent hint walks the profile left to right.
  size_t hint = 0;
  double acc = 0.0;
  for (Mote* m : motes) {
    const double midpoint = acc + m->area() / 2.0;
    acc += m->area();
    const double target_cap = region_cap * (midpoint / total_area);
    const double pos = profile.invert(target_cap, &hint);
    set_coord(m, horizontal, std::clamp(pos, lo, hi));
    // Clamp transverse coordinate into the region.
    if (horizontal)
      m->y = std::clamp(m->y, region.yl, region.yh);
    else
      m->x = std::clamp(m->x, region.xl, region.xh);
  }
}

}  // namespace complx
