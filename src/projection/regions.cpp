#include "projection/regions.h"

#include <algorithm>

#include "util/fpcmp.h"

namespace complx {

namespace {
/// Region box shrunk so that a cell center inside it keeps the cell inside
/// the region. Degenerate (cell larger than region) collapses to the center.
Rect center_box(const Rect& region, const Cell& c) {
  Rect b{region.xl + c.width / 2.0, region.yl + c.height / 2.0,
         region.xh - c.width / 2.0, region.yh - c.height / 2.0};
  if (b.xl > b.xh) b.xl = b.xh = (region.xl + region.xh) / 2.0;
  if (b.yl > b.yh) b.yl = b.yh = (region.yl + region.yh) / 2.0;
  return b;
}
}  // namespace

size_t snap_to_regions(const Netlist& nl, Placement& p) {
  size_t moved = 0;
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (c.region == kNoRegion) continue;
    const Rect box = center_box(nl.regions()[c.region].box, c);
    const double nx = std::clamp(p.x[id], box.xl, box.xh);
    const double ny = std::clamp(p.y[id], box.yl, box.yh);
    // Exact compare on purpose: "did the clamp move this cell at all".
    if (!fp::exactly_equal(nx, p.x[id]) || !fp::exactly_equal(ny, p.y[id])) {
      p.x[id] = nx;
      p.y[id] = ny;
      ++moved;
    }
  }
  return moved;
}

bool regions_satisfied(const Netlist& nl, const Placement& p, double tol) {
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (c.region == kNoRegion) continue;
    const Rect& box = nl.regions()[c.region].box;
    if (p.x[id] - c.width / 2.0 < box.xl - tol ||
        p.x[id] + c.width / 2.0 > box.xh + tol ||
        p.y[id] - c.height / 2.0 < box.yl - tol ||
        p.y[id] + c.height / 2.0 > box.yh + tol)
      return false;
  }
  return true;
}

}  // namespace complx
