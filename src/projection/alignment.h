// Alignment constraints — the paper's conclusion names them explicitly:
// "the handling of region, alignment and other types of constraints
// requires only the modification of the feasibility projection".
//
// An alignment group forces its cells to share one coordinate along an
// axis (e.g. a datapath bit-slice sharing a row, or a register column
// sharing an x). Enforcement is a projection step: after density
// spreading, every group collapses to its members' mean coordinate.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "wl/b2b.h"

namespace complx {

struct AlignmentGroup {
  std::vector<CellId> cells;
  Axis axis = Axis::Y;  ///< Y: share a y coordinate (same row-line);
                        ///< X: share an x coordinate (same column)
};

/// Snaps every group to its mean coordinate along its axis. Returns the
/// number of cells moved (beyond tolerance).
size_t snap_to_alignments(const Netlist& nl,
                          const std::vector<AlignmentGroup>& groups,
                          Placement& p, double tol = 1e-9);

/// Max deviation from perfect alignment across all groups.
double alignment_error(const std::vector<AlignmentGroup>& groups,
                       const Placement& p);

}  // namespace complx
