#include "projection/shredder.h"

#include <algorithm>
#include <cmath>

namespace complx {

MacroShredder::MacroShredder(const Netlist& nl, const ShredderOptions& opts)
    : nl_(nl), opts_(opts) {}

std::vector<Mote> MacroShredder::shred(CellId id, double cx, double cy) const {
  const Cell& c = nl_.cell(id);
  const double tile = opts_.shred_rows * nl_.row_height();
  const double scale = std::sqrt(std::clamp(opts_.gamma, 0.01, 1.0));

  // Number of tiles per dimension (at least one); tiles evenly cover the
  // macro so the shred lattice is uniform.
  const int nx = std::max(1, static_cast<int>(std::round(c.width / tile)));
  const int ny = std::max(1, static_cast<int>(std::round(c.height / tile)));
  const double step_x = c.width / nx;
  const double step_y = c.height / ny;

  std::vector<Mote> shreds;
  shreds.reserve(static_cast<size_t>(nx) * static_cast<size_t>(ny));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Mote m;
      m.owner = id;
      m.width = step_x * scale;
      m.height = step_y * scale;
      m.x = cx - c.width / 2.0 + (i + 0.5) * step_x;
      m.y = cy - c.height / 2.0 + (j + 0.5) * step_y;
      shreds.push_back(m);
    }
  }
  return shreds;
}

Point MacroShredder::mean_displacement(const std::vector<Mote>& shreds,
                                       const std::vector<Point>& origins) {
  if (shreds.empty()) return {};
  double dx = 0.0, dy = 0.0;
  for (size_t k = 0; k < shreds.size(); ++k) {
    dx += shreds[k].x - origins[k].x;
    dy += shreds[k].y - origins[k].y;
  }
  const double n = static_cast<double>(shreds.size());
  return {dx / n, dy / n};
}

}  // namespace complx
