// Macro shredding for the mixed-size feasibility projection (paper Section 5
// and Figure 2). Each movable macro is tiled by "shreds" — squares of side
// 2 × standard-row height, shrunk by √γ so that after γ-density spreading
// the shred cloud's bounding box matches the macro plus its halo. Shreds are
// NOT connected by fake nets and never appear in the linear systems; they
// exist only inside P_C. The macro's projected position is the interpolation
// of its shreds: original center plus the mean shred displacement.
#pragma once

#include <vector>

#include "projection/mote.h"

namespace complx {

struct ShredderOptions {
  double shred_rows = 2.0;  ///< shred edge in row heights (paper: 2×2)
  double gamma = 1.0;       ///< target utilization (√γ size compensation)
};

class MacroShredder {
 public:
  MacroShredder(const Netlist& nl, const ShredderOptions& opts);

  /// Tiles macro `id` (centered at (cx, cy)) into shreds. The shreds' total
  /// area equals γ × macro area by construction of the √γ scaling.
  std::vector<Mote> shred(CellId id, double cx, double cy) const;

  /// Mean displacement of `shreds` relative to their recorded origin
  /// positions in `origins` (parallel arrays); applied to the macro center.
  static Point mean_displacement(const std::vector<Mote>& shreds,
                                 const std::vector<Point>& origins);

 private:
  const Netlist& nl_;
  ShredderOptions opts_;
};

}  // namespace complx
