// The approximate feasibility projection P_C (look-ahead legalization):
// given an iterate (x, y), produce a nearby placement satisfying the density
// target γ within every grid bin, handling standard cells, movable macros
// (via shredding) and hard region constraints.
//
// This is the "spreading" half of ComPLx; its output becomes the anchor
// placement (x°, y°) in the simplified Lagrangian of Formula 10, and the
// L1 displacement it reports is the penalty value Π(x, y) of Formula 3.
#pragma once

#include <optional>
#include <vector>

#include "density/grid.h"
#include "netlist/netlist.h"
#include "projection/alignment.h"
#include "projection/mote.h"
#include "projection/shredder.h"
#include "projection/spreader.h"

namespace complx {

struct ProjectionOptions {
  double gamma = 1.0;  ///< target utilization (ISPD 2006: 0.5 / 0.8 / 0.9)
  size_t bins_x = 0;   ///< 0 = derive from design size
  size_t bins_y = 0;
  SpreaderOptions spreader;  ///< gamma is overwritten from this struct
  ShredderOptions shredder;  ///< gamma is overwritten from this struct
  bool enforce_regions = true;
  /// Alignment groups enforced by the projection (after density spreading
  /// and region snapping).
  std::vector<AlignmentGroup> alignments;
};

struct ProjectionResult {
  Placement anchors;        ///< the C-feasible(-ish) projection P_C(x, y)
  double displacement_l1 = 0.0;  ///< Π: Σ_movable |x−x°| + |y−y°|
  size_t num_regions = 0;        ///< spreading regions processed
  /// Density overflow of the INPUT placement: Σ bin overflow above γ,
  /// divided by total movable area. The classic SimPL stopping metric.
  double input_overflow_ratio = 0.0;
  /// Shred clouds after spreading (only filled when export_shreds=true);
  /// used by the Figure 2 reproduction.
  std::vector<Mote> shreds;
  std::vector<Point> shred_origins;
};

class LookAheadLegalizer {
 public:
  LookAheadLegalizer(const Netlist& nl, const ProjectionOptions& opts);

  /// Number of bins chosen automatically for this netlist (finest scale:
  /// bins of ~3 row heights, capped for tractability).
  static size_t auto_bins(const Netlist& nl);

  /// Computes P_C at `p`. `p` itself is not modified.
  ProjectionResult project(const Placement& p,
                           bool export_shreds = false) const;

  /// Adjusts the grid resolution (the ComPLx driver coarsens/refines the
  /// grid over iterations as a runtime/accuracy trade-off, Section 6).
  void set_grid(size_t bins_x, size_t bins_y);

  /// Per-cell AREA inflation factors (SimPLR-style routability): standard
  /// cells are spread as if `factor×` larger, creating routing whitespace.
  /// Pass an empty vector to clear. Macros are unaffected.
  void set_inflation(Vec area_factors);
  size_t bins_x() const { return opts_.bins_x; }
  size_t bins_y() const { return opts_.bins_y; }

  const ProjectionOptions& options() const { return opts_; }

 private:
  const Netlist& nl_;
  ProjectionOptions opts_;
  Vec inflation_;  ///< empty = no inflation
};

}  // namespace complx
