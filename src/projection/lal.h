// The approximate feasibility projection P_C (look-ahead legalization):
// given an iterate (x, y), produce a nearby placement satisfying the density
// target γ within every grid bin, handling standard cells, movable macros
// (via shredding) and hard region constraints.
//
// This is the "spreading" half of ComPLx; its output becomes the anchor
// placement (x°, y°) in the simplified Lagrangian of Formula 10, and the
// L1 displacement it reports is the penalty value Π(x, y) of Formula 3.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "density/grid.h"
#include "netlist/netlist.h"
#include "projection/backend.h"
#include "projection/mote.h"

namespace complx {

/// Sentinel owner index for motes outside every spreading region.
inline constexpr size_t kNoSpreadRegion = static_cast<size_t>(-1);

/// Exclusive, deterministic region ownership: for every mote, the index of
/// the FIRST region (in the given order) containing its center, or
/// kNoSpreadRegion. Rect::contains is inclusive on both edges, so a mote sitting
/// exactly on a shared region boundary is claimed by the earlier region
/// only — each mote is spread at most once and the per-region mote lists
/// are disjoint, the precondition for spreading regions in parallel.
/// (The historical code pushed such a mote into BOTH regions' lists: the
/// second spread consumed coordinates the first had already rewritten.)
std::vector<size_t> assign_motes_to_regions(const std::vector<Rect>& regions,
                                            const std::vector<Mote>& motes);

class LookAheadLegalizer : public ProjectionBackend {
 public:
  LookAheadLegalizer(const Netlist& nl, const ProjectionOptions& opts);

  /// Number of bins chosen automatically for this netlist (finest scale:
  /// bins of ~3 row heights, capped for tractability).
  static size_t auto_bins(const Netlist& nl);

  const char* name() const override { return "spread"; }

  /// Computes P_C at `p`. `p` itself is not modified.
  ProjectionResult project(const Placement& p,
                           bool export_shreds = false) const override;

  /// Adjusts the grid resolution (the ComPLx driver coarsens/refines the
  /// grid over iterations as a runtime/accuracy trade-off, Section 6).
  void set_grid(size_t bins_x, size_t bins_y) override;

  /// Per-cell AREA inflation factors (SimPLR-style routability): standard
  /// cells are spread as if `factor×` larger, creating routing whitespace.
  /// Pass an empty vector to clear. Macros are unaffected.
  void set_inflation(Vec area_factors) override;
  size_t bins_x() const override { return opts_.bins_x; }
  size_t bins_y() const override { return opts_.bins_y; }

  const ProjectionOptions& options() const override { return opts_; }

  /// Drops the cached capacity field so the next project() rebuilds the
  /// fixed-cell blockage scan from scratch (benchmark/test hook; callers
  /// normally rely on set_grid/set_inflation invalidation).
  void invalidate_grid_cache() override;

 private:
  /// The DensityGrid whose capacity field (fixed-cell blockage) matches the
  /// current (bins_x, bins_y). Constructing a DensityGrid rescans every
  /// fixed cell, so project() keeps one instance alive across calls and
  /// only re-deposits the movable field; set_grid drops it when the
  /// resolution actually changes (the driver calls set_grid every iteration
  /// and repeats the finest size once refinement saturates — those calls
  /// must hit the cache) and set_inflation drops it unconditionally.
  DensityGrid& ensure_grid() const;

  const Netlist& nl_;
  ProjectionOptions opts_;
  Vec inflation_;  ///< empty = no inflation
  mutable std::unique_ptr<DensityGrid> grid_;  ///< cached capacity field
};

}  // namespace complx
