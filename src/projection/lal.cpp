#include "projection/lal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "projection/region_finder.h"
#include "projection/regions.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace complx {

std::vector<size_t> assign_motes_to_regions(const std::vector<Rect>& regions,
                                            const std::vector<Mote>& motes) {
  std::vector<size_t> owner(motes.size(), kNoSpreadRegion);
  if (regions.empty()) return owner;
  // Index-owned writes: mote k's owner depends only on (k, regions), so the
  // result is identical at any thread count.
  parallel_for(motes.size(), [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const Point c{motes[k].x, motes[k].y};
      for (size_t r = 0; r < regions.size(); ++r) {
        if (regions[r].contains(c)) {
          owner[k] = r;
          break;  // first region in deterministic order wins
        }
      }
    }
  });
  return owner;
}

LookAheadLegalizer::LookAheadLegalizer(const Netlist& nl,
                                       const ProjectionOptions& opts)
    : nl_(nl), opts_(opts) {
  if (opts_.bins_x == 0 || opts_.bins_y == 0) {
    const size_t b = auto_bins(nl);
    opts_.bins_x = b;
    opts_.bins_y = b;
  }
  opts_.spreader.gamma = opts_.gamma;
  opts_.shredder.gamma = opts_.gamma;
}

size_t LookAheadLegalizer::auto_bins(const Netlist& nl) {
  // Finest useful grid: bin edge around 3 row heights, but at least ~2
  // average cells per bin and a hard cap to keep region search cheap.
  const double edge = 3.0 * nl.row_height();
  const double span = std::max(nl.core().width(), nl.core().height());
  size_t b = static_cast<size_t>(std::ceil(span / std::max(edge, 1e-9)));
  const size_t by_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(nl.num_movable()) / 2.0)));
  b = std::min(b, std::max<size_t>(by_count, 4));
  return std::clamp<size_t>(b, 4, 512);
}

void LookAheadLegalizer::set_grid(size_t bins_x, size_t bins_y) {
  opts_.bins_x = std::max<size_t>(1, bins_x);
  opts_.bins_y = std::max<size_t>(1, bins_y);
  // Keep the cached capacity field whenever the resolution is unchanged:
  // the driver calls set_grid every iteration and repeats the finest size
  // once refinement saturates, which is exactly the steady state the cache
  // exists for.
  if (grid_ && (grid_->bins_x() != opts_.bins_x ||
                grid_->bins_y() != opts_.bins_y))
    grid_.reset();
}

void LookAheadLegalizer::set_inflation(Vec area_factors) {
  if (!area_factors.empty() && area_factors.size() != nl_.num_cells())
    throw std::invalid_argument("inflation vector size mismatch");
  inflation_ = std::move(area_factors);
  grid_.reset();
}

void LookAheadLegalizer::invalidate_grid_cache() { grid_.reset(); }

DensityGrid& LookAheadLegalizer::ensure_grid() const {
  if (!grid_ || grid_->bins_x() != opts_.bins_x ||
      grid_->bins_y() != opts_.bins_y)
    grid_ = std::make_unique<DensityGrid>(nl_, opts_.bins_x, opts_.bins_y,
                                          opts_.density);
  return *grid_;
}

ProjectionResult LookAheadLegalizer::project(const Placement& p,
                                             bool export_shreds) const {
  ProjectionResult result;
  Timer phase;

  // 1. Materialize motes: one per standard cell, a lattice per macro.
  std::vector<Mote> motes;
  motes.reserve(nl_.num_movable());
  MacroShredder shredder(nl_, opts_.shredder);
  // Shred bookkeeping: [first, last) mote range per macro.
  struct MacroRange {
    CellId id;
    size_t first, last;
  };
  std::vector<MacroRange> macro_ranges;
  std::vector<Point> origins;  // original center per mote (for displacement)

  for (CellId id : nl_.movable_cells()) {
    const Cell& c = nl_.cell(id);
    if (c.is_macro()) {
      std::vector<Mote> shreds = shredder.shred(id, p.x[id], p.y[id]);
      macro_ranges.push_back({id, motes.size(), motes.size() + shreds.size()});
      for (const Mote& m : shreds) {
        origins.push_back({m.x, m.y});
        motes.push_back(m);
      }
    } else {
      Mote m;
      m.owner = id;
      // SimPLR-style inflation: the projection treats the cell as larger so
      // congested neighbourhoods get extra separation.
      const double scale =
          inflation_.empty() ? 1.0 : std::sqrt(std::max(1.0, inflation_[id]));
      m.width = c.width * scale;
      m.height = c.height * scale;
      m.x = p.x[id];
      m.y = p.y[id];
      origins.push_back({m.x, m.y});
      motes.push_back(m);
    }
  }

  // 2. Density field over motes. The capacity half (fixed-cell blockage) is
  //    cached across calls; only the movable deposit runs here.
  DensityGrid& grid = ensure_grid();
  {
    std::vector<Rect> rects;
    rects.reserve(motes.size());
    for (const Mote& m : motes) rects.push_back(m.bounds());
    grid.build_from_rects(rects);
  }

  const double input_overflow = grid.total_overflow(opts_.gamma);
  result.timers.grid_build_s = phase.seconds();
  phase.reset();

  // 3. Spreading regions, exclusive mote ownership, per-region spreading.
  const std::vector<Rect> regions = find_spreading_regions(grid, opts_.gamma);
  const std::vector<size_t> owner = assign_motes_to_regions(regions, motes);
  std::vector<std::vector<Mote*>> per_region(regions.size());
  for (size_t k = 0; k < motes.size(); ++k)
    if (owner[k] != kNoSpreadRegion) per_region[owner[k]].push_back(&motes[k]);
  result.timers.region_find_s = phase.seconds();
  phase.reset();

  // Regions own disjoint mote lists and each is spread independently, so
  // chunk=1 lets the pool process whole regions concurrently; the writes
  // land in disjoint motes and each region's spread is serial internally,
  // so the result is bitwise identical at any thread count.
  Spreader spreader(grid, opts_.spreader);
  parallel_for(
      regions.size(),
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r)
          spreader.spread(regions[r], per_region[r]);
      },
      /*chunk=*/1);
  result.timers.spread_s = phase.seconds();
  phase.reset();

  // 4. Read anchors back: standard cells directly, macros by interpolating
  //    the mean shred displacement.
  result.num_regions = regions.size();
  result.input_overflow_ratio =
      input_overflow / std::max(nl_.movable_area(), 1e-12);
  result.anchors = p;
  size_t mote_idx = 0;
  size_t macro_idx = 0;
  const Rect& core = nl_.core();
  for (CellId id : nl_.movable_cells()) {
    const Cell& c = nl_.cell(id);
    if (c.is_macro()) {
      const MacroRange& mr = macro_ranges[macro_idx++];
      double dx = 0.0, dy = 0.0;
      for (size_t k = mr.first; k < mr.last; ++k) {
        dx += motes[k].x - origins[k].x;
        dy += motes[k].y - origins[k].y;
      }
      const double n = static_cast<double>(mr.last - mr.first);
      double nx = p.x[id] + dx / n;
      double ny = p.y[id] + dy / n;
      nx = std::clamp(nx, core.xl + c.width / 2.0,
                      std::max(core.xl + c.width / 2.0, core.xh - c.width / 2.0));
      ny = std::clamp(ny, core.yl + c.height / 2.0,
                      std::max(core.yl + c.height / 2.0,
                               core.yh - c.height / 2.0));
      result.anchors.x[id] = nx;
      result.anchors.y[id] = ny;
      mote_idx = mr.last;
    } else {
      // Clamp so the full cell stays inside the core (spreading keeps only
      // the center inside its region).
      result.anchors.x[id] = std::clamp(
          motes[mote_idx].x, core.xl + c.width / 2.0,
          std::max(core.xl + c.width / 2.0, core.xh - c.width / 2.0));
      result.anchors.y[id] = std::clamp(
          motes[mote_idx].y, core.yl + c.height / 2.0,
          std::max(core.yl + c.height / 2.0, core.yh - c.height / 2.0));
      ++mote_idx;
    }
  }

  // 5. Hard region constraints (Section S5) and alignment groups.
  if (opts_.enforce_regions && !nl_.regions().empty())
    snap_to_regions(nl_, result.anchors);
  if (!opts_.alignments.empty())
    snap_to_alignments(nl_, opts_.alignments, result.anchors);

  // 6. Penalty value Π = L1 displacement between iterate and projection.
  double pi = 0.0;
  for (CellId id : nl_.movable_cells())
    pi += std::abs(p.x[id] - result.anchors.x[id]) +
          std::abs(p.y[id] - result.anchors.y[id]);
  result.displacement_l1 = pi;

  if (export_shreds) {
    for (const MacroRange& mr : macro_ranges) {
      for (size_t k = mr.first; k < mr.last; ++k) {
        result.shreds.push_back(motes[k]);
        result.shred_origins.push_back(origins[k]);
      }
    }
  }
  result.timers.readback_s = phase.seconds();
  return result;
}

}  // namespace complx
