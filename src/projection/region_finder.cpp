#include "projection/region_finder.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace complx {

namespace {

struct SpanStats {
  double usage = 0.0;
  double capacity = 0.0;
};

SpanStats stats(const DensityGrid& g, const BinSpan& s) {
  SpanStats r;
  for (size_t j = s.j0; j <= s.j1; ++j) {
    for (size_t i = s.i0; i <= s.i1; ++i) {
      r.usage += g.usage(i, j);
      r.capacity += g.capacity(i, j);
    }
  }
  return r;
}

bool satisfied(const DensityGrid& g, const BinSpan& s, double gamma) {
  const SpanStats st = stats(g, s);
  return st.usage <= gamma * st.capacity + 1e-9;
}

/// Grow `s` one bin in the direction that yields the lowest resulting
/// utilization ratio; returns false when no growth is possible.
bool grow(const DensityGrid& g, BinSpan& s, double gamma) {
  const size_t bx = g.bins_x(), by = g.bins_y();
  double best_ratio = std::numeric_limits<double>::infinity();
  int best_dir = -1;
  auto consider = [&](int dir, BinSpan cand) {
    const SpanStats st = stats(g, cand);
    const double ratio =
        st.capacity > 0.0 ? st.usage / (gamma * st.capacity)
                          : std::numeric_limits<double>::infinity();
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_dir = dir;
    }
  };
  if (s.i0 > 0) consider(0, {s.i0 - 1, s.j0, s.i1, s.j1});
  if (s.i1 + 1 < bx) consider(1, {s.i0, s.j0, s.i1 + 1, s.j1});
  if (s.j0 > 0) consider(2, {s.i0, s.j0 - 1, s.i1, s.j1});
  if (s.j1 + 1 < by) consider(3, {s.i0, s.j0, s.i1, s.j1 + 1});
  switch (best_dir) {
    case 0: --s.i0; return true;
    case 1: ++s.i1; return true;
    case 2: --s.j0; return true;
    case 3: ++s.j1; return true;
    default: return false;
  }
}

Rect span_rect(const DensityGrid& g, const BinSpan& s) {
  const Rect lo = g.bin_rect(s.i0, s.j0);
  const Rect hi = g.bin_rect(s.i1, s.j1);
  return {lo.xl, lo.yl, hi.xh, hi.yh};
}

}  // namespace

std::vector<Rect> find_spreading_regions(const DensityGrid& grid,
                                         double gamma) {
  const size_t bx = grid.bins_x(), by = grid.bins_y();

  // 1. Mark overfilled bins.
  std::vector<char> over(bx * by, 0);
  bool any = false;
  for (size_t j = 0; j < by; ++j) {
    for (size_t i = 0; i < bx; ++i) {
      if (grid.overflow(i, j, gamma) > 1e-9) {
        over[j * bx + i] = 1;
        any = true;
      }
    }
  }
  if (!any) return {};

  // 2. BFS-cluster adjacent overfilled bins into seed spans.
  std::vector<BinSpan> spans;
  std::vector<char> visited(bx * by, 0);
  for (size_t j = 0; j < by; ++j) {
    for (size_t i = 0; i < bx; ++i) {
      if (!over[j * bx + i] || visited[j * bx + i]) continue;
      BinSpan s{i, j, i, j};
      std::queue<std::pair<size_t, size_t>> q;
      q.push({i, j});
      visited[j * bx + i] = 1;
      while (!q.empty()) {
        auto [ci, cj] = q.front();
        q.pop();
        s.i0 = std::min(s.i0, ci);
        s.i1 = std::max(s.i1, ci);
        s.j0 = std::min(s.j0, cj);
        s.j1 = std::max(s.j1, cj);
        const std::pair<long, long> nbrs[4] = {
            {static_cast<long>(ci) - 1, static_cast<long>(cj)},
            {static_cast<long>(ci) + 1, static_cast<long>(cj)},
            {static_cast<long>(ci), static_cast<long>(cj) - 1},
            {static_cast<long>(ci), static_cast<long>(cj) + 1}};
        for (auto [ni, nj] : nbrs) {
          if (ni < 0 || nj < 0 || ni >= static_cast<long>(bx) ||
              nj >= static_cast<long>(by))
            continue;
          const size_t k =
              static_cast<size_t>(nj) * bx + static_cast<size_t>(ni);
          if (over[k] && !visited[k]) {
            visited[k] = 1;
            q.push({static_cast<size_t>(ni), static_cast<size_t>(nj)});
          }
        }
      }
      spans.push_back(s);
    }
  }

  // 3. Expand each span until its aggregate utilization target is met.
  for (BinSpan& s : spans) {
    while (!satisfied(grid, s, gamma)) {
      if (!grow(grid, s, gamma)) break;  // whole core reached
    }
  }

  // 4. Merge overlapping spans, re-expand merged results.
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t a = 0; a < spans.size() && !merged; ++a) {
      for (size_t b = a + 1; b < spans.size() && !merged; ++b) {
        const bool overlap = spans[a].i0 <= spans[b].i1 &&
                             spans[b].i0 <= spans[a].i1 &&
                             spans[a].j0 <= spans[b].j1 &&
                             spans[b].j0 <= spans[a].j1;
        if (!overlap) continue;
        BinSpan u{std::min(spans[a].i0, spans[b].i0),
                  std::min(spans[a].j0, spans[b].j0),
                  std::max(spans[a].i1, spans[b].i1),
                  std::max(spans[a].j1, spans[b].j1)};
        while (!satisfied(grid, u, gamma)) {
          if (!grow(grid, u, gamma)) break;
        }
        spans[a] = u;
        spans.erase(spans.begin() + static_cast<long>(b));
        merged = true;
      }
    }
  }

  std::vector<Rect> rects;
  rects.reserve(spans.size());
  for (const BinSpan& s : spans) rects.push_back(span_rect(grid, s));
  return rects;
}

}  // namespace complx
