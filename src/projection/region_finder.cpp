#include "projection/region_finder.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace complx {

namespace {

struct SpanStats {
  double usage = 0.0;
  double capacity = 0.0;
};

SpanStats stats(const DensityGrid& g, const BinSpan& s) {
  // O(1) via the grid's summed-area tables (falls back to the historical
  // per-bin loop, in the same bin order, when use_prefix_sums is off).
  SpanStats r;
  r.usage = g.usage_sum(s.i0, s.j0, s.i1, s.j1);
  r.capacity = g.capacity_sum(s.i0, s.j0, s.i1, s.j1);
  return r;
}

bool satisfied(const DensityGrid& g, const BinSpan& s, double gamma) {
  const SpanStats st = stats(g, s);
  return st.usage <= gamma * st.capacity + 1e-9;
}

/// Grow `s` one bin in the direction that yields the lowest resulting
/// utilization ratio; returns false when no growth is possible.
bool grow(const DensityGrid& g, BinSpan& s, double gamma) {
  const size_t bx = g.bins_x(), by = g.bins_y();
  double best_ratio = std::numeric_limits<double>::infinity();
  int best_dir = -1;
  auto consider = [&](int dir, BinSpan cand) {
    const SpanStats st = stats(g, cand);
    const double ratio =
        st.capacity > 0.0 ? st.usage / (gamma * st.capacity)
                          : std::numeric_limits<double>::infinity();
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_dir = dir;
    }
  };
  if (s.i0 > 0) consider(0, {s.i0 - 1, s.j0, s.i1, s.j1});
  if (s.i1 + 1 < bx) consider(1, {s.i0, s.j0, s.i1 + 1, s.j1});
  if (s.j0 > 0) consider(2, {s.i0, s.j0 - 1, s.i1, s.j1});
  if (s.j1 + 1 < by) consider(3, {s.i0, s.j0, s.i1, s.j1 + 1});
  switch (best_dir) {
    case 0: --s.i0; return true;
    case 1: ++s.i1; return true;
    case 2: --s.j0; return true;
    case 3: ++s.j1; return true;
    default: return false;
  }
}

Rect span_rect(const DensityGrid& g, const BinSpan& s) {
  const Rect lo = g.bin_rect(s.i0, s.j0);
  const Rect hi = g.bin_rect(s.i1, s.j1);
  return {lo.xl, lo.yl, hi.xh, hi.yh};
}

}  // namespace

std::vector<Rect> find_spreading_regions(const DensityGrid& grid, double gamma,
                                         RegionMergePolicy policy) {
  const size_t bx = grid.bins_x(), by = grid.bins_y();

  // 1. Mark overfilled bins.
  std::vector<char> over(bx * by, 0);
  bool any = false;
  for (size_t j = 0; j < by; ++j) {
    for (size_t i = 0; i < bx; ++i) {
      if (grid.overflow(i, j, gamma) > 1e-9) {
        over[j * bx + i] = 1;
        any = true;
      }
    }
  }
  if (!any) return {};

  // 2. BFS-cluster adjacent overfilled bins into seed spans.
  std::vector<BinSpan> spans;
  std::vector<char> visited(bx * by, 0);
  for (size_t j = 0; j < by; ++j) {
    for (size_t i = 0; i < bx; ++i) {
      if (!over[j * bx + i] || visited[j * bx + i]) continue;
      BinSpan s{i, j, i, j};
      std::queue<std::pair<size_t, size_t>> q;
      q.push({i, j});
      visited[j * bx + i] = 1;
      while (!q.empty()) {
        auto [ci, cj] = q.front();
        q.pop();
        s.i0 = std::min(s.i0, ci);
        s.i1 = std::max(s.i1, ci);
        s.j0 = std::min(s.j0, cj);
        s.j1 = std::max(s.j1, cj);
        const std::pair<long, long> nbrs[4] = {
            {static_cast<long>(ci) - 1, static_cast<long>(cj)},
            {static_cast<long>(ci) + 1, static_cast<long>(cj)},
            {static_cast<long>(ci), static_cast<long>(cj) - 1},
            {static_cast<long>(ci), static_cast<long>(cj) + 1}};
        for (auto [ni, nj] : nbrs) {
          if (ni < 0 || nj < 0 || ni >= static_cast<long>(bx) ||
              nj >= static_cast<long>(by))
            continue;
          const size_t k =
              static_cast<size_t>(nj) * bx + static_cast<size_t>(ni);
          if (over[k] && !visited[k]) {
            visited[k] = 1;
            q.push({static_cast<size_t>(ni), static_cast<size_t>(nj)});
          }
        }
      }
      spans.push_back(s);
    }
  }

  // 3. Expand each span until its aggregate utilization target is met.
  for (BinSpan& s : spans) {
    while (!satisfied(grid, s, gamma)) {
      if (!grow(grid, s, gamma)) break;  // whole core reached
    }
  }

  // 4. Merge overlapping spans, re-expand merged results.
  const auto overlaps = [&](const BinSpan& a, const BinSpan& b) {
    return a.i0 <= b.i1 && b.i0 <= a.i1 && a.j0 <= b.j1 && b.j0 <= a.j1;
  };
  const auto merge_into = [&](size_t a, size_t b) {
    BinSpan u{std::min(spans[a].i0, spans[b].i0),
              std::min(spans[a].j0, spans[b].j0),
              std::max(spans[a].i1, spans[b].i1),
              std::max(spans[a].j1, spans[b].j1)};
    while (!satisfied(grid, u, gamma)) {
      if (!grow(grid, u, gamma)) break;
    }
    spans[a] = u;
    spans.erase(spans.begin() + static_cast<long>(b));
  };

  // complx-lint: allow(N1): enum comparison — the scanner's declarator
  // heuristic mistakes RegionMergePolicy for a floating-point name because
  // it follows `double gamma,` in the parameter list.
  if (policy == RegionMergePolicy::kFullRescan) {
    // Historical O(n³) reference: restart the full pair scan after every
    // merge. The incremental policy below must reproduce this exactly
    // (asserted by the region-finder stress test).
    bool merged = true;
    while (merged) {
      merged = false;
      for (size_t a = 0; a < spans.size() && !merged; ++a) {
        for (size_t b = a + 1; b < spans.size() && !merged; ++b) {
          if (!overlaps(spans[a], spans[b])) continue;
          merge_into(a, b);
          merged = true;
        }
      }
    }
  } else {
    // Only a span that just absorbed another can introduce new overlaps,
    // so after a merge it suffices to recheck pairs involving that span —
    // in the order (0,x)…(x−1,x), (x,x+1)… — which is exactly the order a
    // full restart visits the not-known-disjoint pairs. Every other pair
    // was verified disjoint by an earlier block and is unchanged, hence
    // the merge sequence (and the final region set) is bitwise identical
    // to the reference, at O(n) pair work per forward merge instead of a
    // full O(n²) rescan each time.
    std::vector<char> dirty(spans.size(), 0);
    size_t x = 0;
    while (x < spans.size()) {
      if (dirty[x]) {
        dirty[x] = 0;
        bool merged_back = false;
        for (size_t k = 0; k < x; ++k) {
          if (!overlaps(spans[k], spans[x])) continue;
          merge_into(k, x);
          dirty.erase(dirty.begin() + static_cast<long>(x));
          dirty[k] = 1;
          x = k;
          merged_back = true;
          break;
        }
        if (merged_back) continue;
      }
      bool merged_fwd = false;
      for (size_t y = x + 1; y < spans.size(); ++y) {
        if (!overlaps(spans[x], spans[y])) continue;
        merge_into(x, y);
        dirty.erase(dirty.begin() + static_cast<long>(y));
        dirty[x] = 1;
        merged_fwd = true;
        break;
      }
      if (!merged_fwd) ++x;
    }
  }

  std::vector<Rect> rects;
  rects.reserve(spans.size());
  for (const BinSpan& s : spans) rects.push_back(span_rect(grid, s));
  return rects;
}

}  // namespace complx
