#include "projection/alignment.h"

#include <algorithm>
#include <cmath>

namespace complx {

size_t snap_to_alignments(const Netlist& nl,
                          const std::vector<AlignmentGroup>& groups,
                          Placement& p, double tol) {
  size_t moved = 0;
  for (const AlignmentGroup& g : groups) {
    if (g.cells.size() < 2) continue;
    Vec& coords = g.axis == Axis::X ? p.x : p.y;
    double mean = 0.0;
    size_t n = 0;
    for (CellId id : g.cells) {
      if (!nl.cell(id).movable()) continue;  // fixed members pin the line
      mean += coords[id];
      ++n;
    }
    // Fixed members override the mean: align to the first fixed cell.
    bool pinned = false;
    for (CellId id : g.cells) {
      if (!nl.cell(id).movable()) {
        mean = g.axis == Axis::X ? p.x[id] : p.y[id];
        pinned = true;
        break;
      }
    }
    if (!pinned) {
      if (n == 0) continue;
      mean /= static_cast<double>(n);
    }
    for (CellId id : g.cells) {
      if (!nl.cell(id).movable()) continue;
      if (std::abs(coords[id] - mean) > tol) ++moved;
      coords[id] = mean;
    }
  }
  return moved;
}

double alignment_error(const std::vector<AlignmentGroup>& groups,
                       const Placement& p) {
  double worst = 0.0;
  for (const AlignmentGroup& g : groups) {
    if (g.cells.empty()) continue;
    const Vec& coords = g.axis == Axis::X ? p.x : p.y;
    double lo = coords[g.cells.front()], hi = lo;
    for (CellId id : g.cells) {
      lo = std::min(lo, coords[id]);
      hi = std::max(hi, coords[id]);
    }
    worst = std::max(worst, hi - lo);
  }
  return worst;
}

}  // namespace complx
