// Criticality-driven weighting (paper Section 5, Formula 13, and S6):
//  * net weights in Φ are raised on timing-critical nets,
//  * the per-cell criticality vector γ scales the Lagrangian penalty term
//    so critical cells stay close to their feasible anchors.
#pragma once

#include "timing/sta.h"

namespace complx {

/// Multiplies the weights of `nets` by `factor` (Figure 5's experiment uses
/// factors 20 and 40 on the nets of selected paths).
void scale_net_weights(Netlist& nl, const std::vector<NetId>& nets,
                       double factor);

/// Formula 13 update: every cell with negative slack has its criticality
/// multiplied by (1 + delta); others decay back toward 1. Returns the
/// number of critical cells.
size_t update_criticality(Vec& criticality, const TimingReport& report,
                          double delta);

/// Net-weighting from slack (classic slack-based scheme): weight_e =
/// 1 + strength · max(0, crit)^exponent where crit = 1 − slack/period over
/// the net's most critical sink.
void slack_based_net_weights(Netlist& nl, const TimingReport& report,
                             double strength, double exponent = 2.0);

// ---- power-aware placement (paper Section 5; [25] extends SimPL this way)

/// Synthetic per-cell switching activity factors in [0, 1]: a small set of
/// high-activity cells (clock-ish) over a low-activity background. Real
/// flows take these from simulation; the distribution shape is what the
/// weighting below consumes.
Vec synthetic_activity(const Netlist& nl, uint64_t seed,
                       double hot_fraction = 0.1);

/// Power-aware net weights: weight_e = 1 + strength · (max driver/sink
/// activity). Heavily switching nets get shorter wires (lower dynamic
/// power); weights feed Φ like any other net weight.
void activity_based_net_weights(Netlist& nl, const Vec& activity,
                                double strength);

/// Formula 13 initial criticality vector: "Initially, γ is populated with
/// switching activity factors (no cells are critical)" — γ_i = 1 + activity.
Vec criticality_from_activity(const Vec& activity);

}  // namespace complx
