#include "timing/sta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/log.h"
#include "util/rng.h"

namespace complx {

std::vector<char> choose_registers(const Netlist& nl, double fraction,
                                   uint64_t seed) {
  std::vector<char> regs(nl.num_cells(), 0);
  Rng rng(seed);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (!c.movable()) {
      regs[id] = 1;  // pads / fixed blocks are timing boundaries
    } else if (!c.is_macro() && rng.uniform() < fraction) {
      regs[id] = 1;
    }
  }
  return regs;
}

TimingGraph::TimingGraph(const Netlist& nl, std::vector<char> is_register,
                         const TimingOptions& opts)
    : nl_(nl), is_register_(std::move(is_register)), opts_(opts) {
  // Build combinational in-degrees: edge driver_cell -> sink_cell exists for
  // every net pin pair (driver, sink) where the SINK is combinational.
  const size_t n = nl.num_cells();
  std::vector<uint32_t> in_degree(n, 0);
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    if (net.num_pins < 2) continue;
    const CellId driver = nl.pin(net.first_pin).cell;
    for (uint32_t k = 1; k < net.num_pins; ++k) {
      const CellId sink = nl.pin(net.first_pin + k).cell;
      if (sink == driver || is_register_[sink]) continue;
      ++in_degree[sink];
    }
  }

  // Kahn's algorithm; registers and zero-in-degree cells seed the order.
  std::queue<CellId> ready;
  for (CellId c = 0; c < n; ++c)
    if (is_register_[c] || in_degree[c] == 0) ready.push(c);
  std::vector<char> emitted(n, 0);
  topo_order_.reserve(n);
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    if (emitted[c]) continue;
    emitted[c] = 1;
    topo_order_.push_back(c);
    for (NetId e : nl.nets_of_cell(c)) {
      const Net& net = nl.net(e);
      if (nl.pin(net.first_pin).cell != c) continue;  // c must drive
      for (uint32_t k = 1; k < net.num_pins; ++k) {
        const CellId sink = nl.pin(net.first_pin + k).cell;
        if (sink == c || is_register_[sink]) continue;
        if (--in_degree[sink] == 0) ready.push(sink);
      }
    }
  }
  if (topo_order_.size() < n) {
    had_cycles_ = true;
    log_warn("timing: %zu cells in combinational cycles (best-effort STA)",
             n - topo_order_.size());
    for (CellId c = 0; c < n; ++c)
      if (!emitted[c]) topo_order_.push_back(c);
  }
}

double TimingGraph::edge_delay(const Placement& p, PinId driver,
                               PinId sink) const {
  const Pin& d = nl_.pin(driver);
  const Pin& s = nl_.pin(sink);
  const double dist = std::abs(p.x[d.cell] + d.dx - p.x[s.cell] - s.dx) +
                      std::abs(p.y[d.cell] + d.dy - p.y[s.cell] - s.dy);
  return opts_.cell_delay + opts_.wire_delay_per_unit * dist;
}

TimingReport TimingGraph::analyze(const Placement& p) const {
  const size_t n = nl_.num_cells();
  TimingReport rep;
  rep.arrival.assign(n, 0.0);

  // Forward propagation in topological order. Registers launch at t = 0;
  // their data arrival (for slack) is tracked separately below.
  Vec data_arrival(n, 0.0);  // latest input arrival, incl. at registers
  for (CellId c : topo_order_) {
    for (NetId e : nl_.nets_of_cell(c)) {
      const Net& net = nl_.net(e);
      if (nl_.pin(net.first_pin).cell != c) continue;
      const double launch = is_register_[c] ? 0.0 : rep.arrival[c];
      for (uint32_t k = 1; k < net.num_pins; ++k) {
        const CellId sink = nl_.pin(net.first_pin + k).cell;
        if (sink == c) continue;
        const double t = launch + edge_delay(p, net.first_pin,
                                             net.first_pin + k);
        data_arrival[sink] = std::max(data_arrival[sink], t);
        if (!is_register_[sink])
          rep.arrival[sink] = std::max(rep.arrival[sink], t);
      }
    }
  }

  double max_arrival = 0.0;
  for (CellId c = 0; c < n; ++c)
    max_arrival = std::max(max_arrival, data_arrival[c]);
  rep.period = opts_.period > 0.0 ? opts_.period : 1.05 * max_arrival;

  // Backward propagation: endpoints (register/pad data inputs) require the
  // period; combinational cells require min over fanout.
  rep.required.assign(n, rep.period);
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const CellId c = *it;
    if (is_register_[c]) continue;
    double req = rep.period;
    for (NetId e : nl_.nets_of_cell(c)) {
      const Net& net = nl_.net(e);
      if (nl_.pin(net.first_pin).cell != c) continue;
      for (uint32_t k = 1; k < net.num_pins; ++k) {
        const CellId sink = nl_.pin(net.first_pin + k).cell;
        if (sink == c) continue;
        const double d = edge_delay(p, net.first_pin, net.first_pin + k);
        req = std::min(req, rep.required[sink] - d);
      }
    }
    rep.required[c] = req;
  }

  // Endpoint detection: registers, plus primary outputs (cells that drive
  // nothing at all).
  std::vector<char> has_fanout(n, 0);
  for (NetId e = 0; e < nl_.num_nets(); ++e) {
    const Net& net = nl_.net(e);
    if (net.num_pins < 2) continue;
    const CellId driver = nl_.pin(net.first_pin).cell;
    for (uint32_t k = 1; k < net.num_pins; ++k) {
      if (nl_.pin(net.first_pin + k).cell != driver) has_fanout[driver] = 1;
    }
  }

  rep.slack.assign(n, 0.0);
  rep.worst_slack = std::numeric_limits<double>::infinity();
  for (CellId c = 0; c < n; ++c) {
    // Slack at a cell: how much later its data could arrive. Endpoints use
    // data arrival vs period; internal cells use required − arrival.
    const bool endpoint = is_register_[c] || !has_fanout[c];
    const double arr = is_register_[c] ? data_arrival[c] : rep.arrival[c];
    const double req = is_register_[c] ? rep.period : rep.required[c];
    rep.slack[c] = req - arr;
    if (rep.slack[c] < 0.0) ++rep.violations;
    // The worst ENDPOINT seeds critical-path extraction; ties resolve to
    // the true path terminus rather than an internal cell.
    if (endpoint && rep.slack[c] < rep.worst_slack) {
      rep.worst_slack = rep.slack[c];
      rep.worst_endpoint = c;
    }
  }
  return rep;
}

std::vector<CellId> TimingGraph::critical_path(
    const Placement& p, const TimingReport& report) const {
  // Walk backward from the worst endpoint along max-arrival predecessors.
  std::vector<CellId> path;
  CellId cur = report.worst_endpoint;
  path.push_back(cur);
  for (size_t guard = 0; guard < nl_.num_cells(); ++guard) {
    // Find the fan-in edge whose launch + delay equals our data arrival.
    double best = -1.0;
    CellId best_pred = cur;
    for (NetId e : nl_.nets_of_cell(cur)) {
      const Net& net = nl_.net(e);
      const CellId driver = nl_.pin(net.first_pin).cell;
      if (driver == cur) continue;
      // Is cur a sink of this net?
      bool is_sink = false;
      uint32_t sink_pin = 0;
      for (uint32_t k = 1; k < net.num_pins; ++k) {
        if (nl_.pin(net.first_pin + k).cell == cur) {
          is_sink = true;
          sink_pin = net.first_pin + k;
          break;
        }
      }
      if (!is_sink) continue;
      const double launch =
          is_register_[driver] ? 0.0 : report.arrival[driver];
      const double t = launch + edge_delay(p, net.first_pin, sink_pin);
      if (t > best) {
        best = t;
        best_pred = driver;
      }
    }
    if (best_pred == cur) break;
    path.push_back(best_pred);
    if (is_register_[best_pred]) break;  // path start reached
    cur = best_pred;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NetId> TimingGraph::path_nets(
    const std::vector<CellId>& path) const {
  std::vector<NetId> nets;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // The net driven by path[i] that contains path[i+1] as a sink.
    for (NetId e : nl_.nets_of_cell(path[i])) {
      const Net& net = nl_.net(e);
      if (nl_.pin(net.first_pin).cell != path[i]) continue;
      for (uint32_t k = 1; k < net.num_pins; ++k) {
        if (nl_.pin(net.first_pin + k).cell == path[i + 1]) {
          nets.push_back(e);
          k = net.num_pins;
          break;
        }
      }
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

}  // namespace complx
