// Lumped-delay static timing analysis over the placed netlist.
//
// Conventions: the FIRST pin of every net is its driver; remaining pins are
// sinks. Register cells begin and end timing paths. Edge delay from driver
// to sink is  cell_delay + wire_delay_per_unit · (Manhattan pin distance) —
// the linear-delay model that net-weighting placement literature assumes
// (paper Section 5, "Extensions for timing- and power-driven placement").
//
// Combinational cycles (possible in synthetic netlists) are broken at
// arbitrary back edges with a warning; their cells get best-effort arrivals.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct TimingOptions {
  double cell_delay = 1.0;
  double wire_delay_per_unit = 0.01;
  /// Clock period; 0 = auto (1.05 × the max arrival of the initial run).
  double period = 0.0;
};

struct TimingReport {
  Vec arrival;   ///< per cell, at the cell output
  Vec required;  ///< per cell
  Vec slack;     ///< required − arrival
  double worst_slack = 0.0;
  double period = 0.0;
  CellId worst_endpoint = 0;
  size_t violations = 0;  ///< cells with negative slack
};

class TimingGraph {
 public:
  /// `is_register[c]` marks sequential cells; they start and end paths.
  TimingGraph(const Netlist& nl, std::vector<char> is_register,
              const TimingOptions& opts);

  /// Full arrival/required/slack propagation at placement `p`.
  TimingReport analyze(const Placement& p) const;

  /// Most critical path (cell ids from path start to endpoint), extracted
  /// from a report by walking max-arrival predecessors.
  std::vector<CellId> critical_path(const Placement& p,
                                    const TimingReport& report) const;

  /// Nets on the critical path through these cells (for net weighting).
  std::vector<NetId> path_nets(const std::vector<CellId>& path) const;

  const std::vector<char>& registers() const { return is_register_; }

 private:
  double edge_delay(const Placement& p, PinId driver, PinId sink) const;

  const Netlist& nl_;
  std::vector<char> is_register_;
  TimingOptions opts_;
  std::vector<CellId> topo_order_;  ///< cells in topological order
  bool had_cycles_ = false;
};

/// Deterministically marks ~`fraction` of movable standard cells as
/// registers (plus all pads, which behave as timing boundaries).
std::vector<char> choose_registers(const Netlist& nl, double fraction,
                                   uint64_t seed);

}  // namespace complx
