#include "timing/weighting.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace complx {

void scale_net_weights(Netlist& nl, const std::vector<NetId>& nets,
                       double factor) {
  for (NetId e : nets) nl.net(e).weight *= factor;
}

size_t update_criticality(Vec& criticality, const TimingReport& report,
                          double delta) {
  size_t critical = 0;
  for (size_t c = 0; c < criticality.size(); ++c) {
    if (report.slack[c] < 0.0) {
      criticality[c] *= (1.0 + delta);
      ++critical;
    } else {
      // Decay toward neutral so stale criticality does not accumulate.
      criticality[c] = 1.0 + (criticality[c] - 1.0) * 0.9;
    }
  }
  return critical;
}

Vec synthetic_activity(const Netlist& nl, uint64_t seed,
                       double hot_fraction) {
  Rng rng(seed);
  Vec activity(nl.num_cells(), 0.0);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (!nl.cell(id).movable()) continue;
    activity[id] = rng.uniform() < hot_fraction
                       ? rng.uniform(0.5, 1.0)   // hot (clock-ish) cells
                       : rng.uniform(0.0, 0.15);  // background logic
  }
  return activity;
}

void activity_based_net_weights(Netlist& nl, const Vec& activity,
                                double strength) {
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    Net& net = nl.net(e);
    double hottest = 0.0;
    for (uint32_t k = 0; k < net.num_pins; ++k)
      hottest = std::max(hottest, activity[nl.pin(net.first_pin + k).cell]);
    net.weight = 1.0 + strength * hottest;
  }
}

Vec criticality_from_activity(const Vec& activity) {
  Vec crit(activity.size());
  for (size_t i = 0; i < activity.size(); ++i)
    crit[i] = 1.0 + std::max(0.0, activity[i]);
  return crit;
}

void slack_based_net_weights(Netlist& nl, const TimingReport& report,
                             double strength, double exponent) {
  if (report.period <= 0.0) return;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    Net& net = nl.net(e);
    double worst = 0.0;
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const CellId c = nl.pin(net.first_pin + k).cell;
      const double crit = 1.0 - report.slack[c] / report.period;
      worst = std::max(worst, crit);
    }
    net.weight = 1.0 + strength * std::pow(std::max(0.0, worst), exponent);
  }
}

}  // namespace complx
