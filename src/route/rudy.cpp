#include "route/rudy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/parallel.h"

namespace complx {

CongestionMap::CongestionMap(const Netlist& nl, const RudyOptions& opts)
    : nl_(nl), opts_(opts), core_(nl.core()) {
  bx_ = opts.bins_x;
  by_ = opts.bins_y;
  if (bx_ == 0 || by_ == 0) {
    // Bins ~6 rows on edge: fine enough to see hotspots, coarse enough for
    // a stable per-bin statistic.
    const double edge = 6.0 * nl.row_height();
    bx_ = std::max<size_t>(4, static_cast<size_t>(core_.width() / edge));
    by_ = std::max<size_t>(4, static_cast<size_t>(core_.height() / edge));
    bx_ = std::min<size_t>(bx_, 256);
    by_ = std::min<size_t>(by_, 256);
  }
  bw_ = core_.width() / static_cast<double>(bx_);
  bh_ = core_.height() / static_cast<double>(by_);
  // Track capacity: supply_per_area is track length per unit area; a bin of
  // area bw*bh offers supply_per_area * bw * bh length per direction.
  cap_ = std::max(1e-12, opts.supply_per_area * bw_ * bh_);
  h_demand_.assign(bx_ * by_, 0.0);
  v_demand_.assign(bx_ * by_, 0.0);
}

size_t CongestionMap::bin_x_of(double x) const {
  const long k = static_cast<long>(std::floor((x - core_.xl) / bw_));
  return static_cast<size_t>(std::clamp(k, 0L, static_cast<long>(bx_) - 1));
}
size_t CongestionMap::bin_y_of(double y) const {
  const long k = static_cast<long>(std::floor((y - core_.yl) / bh_));
  return static_cast<size_t>(std::clamp(k, 0L, static_cast<long>(by_) - 1));
}

void CongestionMap::deposit_net_range(const Placement& p, size_t begin,
                                      size_t end, std::vector<double>& h_out,
                                      std::vector<double>& v_out) const {
  const NetlistView v = nl_.view();
  const double min_ext = opts_.min_extent_rows * nl_.row_height();
  for (size_t e = begin; e < end; ++e) {
    const Net& net = v.nets[e];
    if (net.num_pins < 2) continue;
    // Inline bbox over the pin SoA arrays (same arithmetic as net_bbox).
    Rect bb;
    {
      double xl = std::numeric_limits<double>::infinity(), xh = -xl;
      double yl = xl, yh = -xl;
      for (uint32_t k = net.first_pin; k < net.first_pin + net.num_pins;
           ++k) {
        const CellId c = v.pin_cell[k];
        const double px = p.x[c] + v.pin_dx[k];
        const double py = p.y[c] + v.pin_dy[k];
        xl = std::min(xl, px);
        xh = std::max(xh, px);
        yl = std::min(yl, py);
        yh = std::max(yh, py);
      }
      bb = {xl, yl, xh, yh};
    }
    // Degenerate boxes still consume local routing resources.
    if (bb.width() < min_ext) {
      const double c = (bb.xl + bb.xh) / 2.0;
      bb.xl = c - min_ext / 2.0;
      bb.xh = c + min_ext / 2.0;
    }
    if (bb.height() < min_ext) {
      const double c = (bb.yl + bb.yh) / 2.0;
      bb.yl = c - min_ext / 2.0;
      bb.yh = c + min_ext / 2.0;
    }
    bb = {std::max(bb.xl, core_.xl), std::max(bb.yl, core_.yl),
          std::min(bb.xh, core_.xh), std::min(bb.yh, core_.yh)};
    if (bb.empty()) continue;

    // RUDY: wire length w (resp. h) spread uniformly over the box.
    const double area = bb.area();
    const double h_density = net.weight * bb.width() / area;
    const double v_density = net.weight * bb.height() / area;

    const size_t i0 = bin_x_of(bb.xl), i1 = bin_x_of(bb.xh - 1e-12);
    const size_t j0 = bin_y_of(bb.yl), j1 = bin_y_of(bb.yh - 1e-12);
    for (size_t j = j0; j <= j1; ++j) {
      for (size_t i = i0; i <= i1; ++i) {
        const Rect bin{core_.xl + static_cast<double>(i) * bw_,
                       core_.yl + static_cast<double>(j) * bh_,
                       core_.xl + static_cast<double>(i + 1) * bw_,
                       core_.yl + static_cast<double>(j + 1) * bh_};
        const double ov = bin.overlap_area(bb);
        h_out[idx(i, j)] += h_density * ov;
        v_out[idx(i, j)] += v_density * ov;
      }
    }
  }
}

void CongestionMap::build(const Placement& p) {
  const size_t num_nets = nl_.num_nets();
  const Partition part = partition_range(num_nets, 1024, 32);
  if (part.parts <= 1) {  // historical serial path
    std::fill(h_demand_.begin(), h_demand_.end(), 0.0);
    std::fill(v_demand_.begin(), v_demand_.end(), 0.0);
    deposit_net_range(p, 0, num_nets, h_demand_, v_demand_);
    return;
  }

  // Per-block partial demand grids merged in block order — same
  // determinism scheme as DensityGrid (docs/PARALLELISM.md).
  const size_t bins = bx_ * by_;
  std::vector<std::vector<double>> h_part(part.parts), v_part(part.parts);
  parallel_for(
      num_nets,
      [&](size_t begin, size_t end) {
        const size_t blk = begin / part.chunk;
        h_part[blk].assign(bins, 0.0);
        v_part[blk].assign(bins, 0.0);
        deposit_net_range(p, begin, end, h_part[blk], v_part[blk]);
      },
      part.chunk);
  parallel_for(bins, [&](size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      double h = 0.0, v = 0.0;
      for (size_t blk = 0; blk < part.parts; ++blk) {
        if (h_part[blk].empty()) continue;
        h += h_part[blk][b];
        v += v_part[blk][b];
      }
      h_demand_[b] = h;
      v_demand_[b] = v;
    }
  });
}

double CongestionMap::congestion_at(double x, double y) const {
  const size_t i = bin_x_of(x), j = bin_y_of(y);
  return std::max(h_congestion(i, j), v_congestion(i, j));
}

double CongestionMap::peak_congestion() const {
  double peak = 0.0;
  for (size_t j = 0; j < by_; ++j)
    for (size_t i = 0; i < bx_; ++i)
      peak = std::max(peak, std::max(h_congestion(i, j), v_congestion(i, j)));
  return peak;
}

double CongestionMap::avg_congestion() const {
  double s = 0.0;
  for (size_t j = 0; j < by_; ++j)
    for (size_t i = 0; i < bx_; ++i)
      s += std::max(h_congestion(i, j), v_congestion(i, j));
  return s / static_cast<double>(bx_ * by_);
}

double CongestionMap::overcongested_fraction(double limit) const {
  size_t over = 0;
  for (size_t j = 0; j < by_; ++j)
    for (size_t i = 0; i < bx_; ++i)
      if (std::max(h_congestion(i, j), v_congestion(i, j)) > limit) ++over;
  return static_cast<double>(over) / static_cast<double>(bx_ * by_);
}

}  // namespace complx
