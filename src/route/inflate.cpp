#include "route/inflate.h"

#include <algorithm>
#include <cmath>

namespace complx {

Vec compute_inflation(const Netlist& nl, const Placement& p,
                      const CongestionMap& congestion,
                      const InflationOptions& opts) {
  Vec factors(nl.num_cells(), 1.0);
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (c.is_macro()) continue;
    const double cong = congestion.congestion_at(p.x[id], p.y[id]);
    if (cong <= opts.threshold) continue;
    const double f = std::pow(cong / opts.threshold, opts.exponent);
    factors[id] = std::clamp(f, 1.0, opts.max_factor);
  }
  return factors;
}

}  // namespace complx
