// Congestion-driven cell inflation — SimPLR's mechanism for routability:
// "SimPLR preprocesses P_C by temporarily increasing the dimensions of some
// movable objects, so as to enhance geometric separation between them"
// (paper, Section 5). Cells sitting in congested bins get an area inflation
// factor; the feasibility projection then spreads them as if they were
// bigger, creating routing whitespace.
#pragma once

#include "netlist/netlist.h"
#include "route/rudy.h"

namespace complx {

struct InflationOptions {
  double max_factor = 2.0;   ///< area inflation cap per cell
  double exponent = 1.0;     ///< factor = min(max, congestion^exponent)
  double threshold = 1.0;    ///< congestion below this → no inflation
};

/// Per-cell AREA inflation factors (>= 1) for placement `p` under the given
/// congestion map. Macros are never inflated (their spreading is handled by
/// shredding); fixed cells get factor 1.
Vec compute_inflation(const Netlist& nl, const Placement& p,
                      const CongestionMap& congestion,
                      const InflationOptions& opts = {});

}  // namespace complx
