// Coarse global routing over a GCell grid — the substrate SimPLR consults
// ("SimPLR calls a global router" — paper, Section 5) to score placements
// by routed congestion rather than by the RUDY proxy.
//
// Scope: classic academic global routing on a uniform grid.
//  * Multi-pin nets are decomposed into 2-pin connections by a Manhattan
//    minimum spanning tree (Prim; chain fallback for huge nets).
//  * Each connection is pattern-routed (both L shapes plus a family of
//    Z shapes), picking the cheapest path under congestion-dependent edge
//    costs.
//  * A few rip-up-and-reroute rounds with PathFinder-style history costs
//    resolve overflow.
//
// The router reports routed wirelength and edge overflow; it is an
// evaluator, not a sign-off router.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct RouterOptions {
  size_t gcells_x = 0;  ///< 0 = auto (~6 rows per gcell edge)
  size_t gcells_y = 0;
  /// Tracks crossing each gcell boundary per direction.
  double edge_capacity_tracks = 10.0;
  int rip_up_rounds = 3;
  /// Congestion cost growth: cost(e) = 1 + penalty·max(0, usage+1-cap) +
  /// history(e).
  double overflow_penalty = 2.0;
  double history_increment = 0.5;
  uint32_t max_net_degree = 64;  ///< larger nets are skipped (clock-like)
  int z_patterns = 3;            ///< intermediate bends tried per direction
};

struct RouteStats {
  double wirelength = 0.0;  ///< total routed length (gcell units × pitch)
  double overflow = 0.0;    ///< Σ_e max(0, usage − capacity)
  double max_overflow = 0.0;
  size_t overflowed_edges = 0;
  size_t routed_connections = 0;
  size_t skipped_nets = 0;
};

class GlobalRouter {
 public:
  GlobalRouter(const Netlist& nl, const RouterOptions& opts);

  /// Routes all nets at placement `p` and returns aggregate statistics.
  RouteStats route(const Placement& p);

  size_t gcells_x() const { return gx_; }
  size_t gcells_y() const { return gy_; }

  /// Post-route per-edge usage inspection (for tests): usage of the
  /// horizontal edge between gcells (i, j) and (i+1, j), or the vertical
  /// edge between (i, j) and (i, j+1).
  double h_edge_usage(size_t i, size_t j) const;
  double v_edge_usage(size_t i, size_t j) const;

 private:
  struct Connection {
    size_t ax, ay, bx, by;  ///< gcell endpoints
    NetId net;
  };

  size_t gcell_x_of(double x) const;
  size_t gcell_y_of(double y) const;
  size_t h_idx(size_t i, size_t j) const { return j * (gx_ - 1) + i; }
  size_t v_idx(size_t i, size_t j) const { return j * gx_ + i; }

  double edge_cost(double usage, double history) const;
  /// Routes one connection along the cheapest pattern; writes the chosen
  /// path's edges into usage (+1 each). Returns the path length in gcells.
  double route_connection(const Connection& c);
  void unroute_connection(const Connection& c,
                          const std::vector<char>& path_unused);

  /// Cost and application of one monotone two-bend path through column
  /// `mid` (for vertical-ish) or row `mid` (horizontal-ish).
  double path_cost(size_t ax, size_t ay, size_t bx, size_t by, size_t mid,
                   bool horizontal_first) const;
  void apply_path(size_t ax, size_t ay, size_t bx, size_t by, size_t mid,
                  bool horizontal_first, double delta);

  const Netlist& nl_;
  RouterOptions opts_;
  Rect core_;
  size_t gx_ = 1, gy_ = 1;
  double gw_ = 1.0, gh_ = 1.0;
  double cap_ = 1.0;
  std::vector<double> h_usage_, v_usage_;
  std::vector<double> h_history_, v_history_;
  /// Chosen (mid, horizontal_first) per connection for rip-up.
  std::vector<std::pair<size_t, char>> choice_;
  std::vector<Connection> connections_;
};

}  // namespace complx
