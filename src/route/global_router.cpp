#include "route/global_router.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.h"

namespace complx {

GlobalRouter::GlobalRouter(const Netlist& nl, const RouterOptions& opts)
    : nl_(nl), opts_(opts), core_(nl.core()) {
  gx_ = opts.gcells_x;
  gy_ = opts.gcells_y;
  if (gx_ == 0 || gy_ == 0) {
    const double edge = 6.0 * nl.row_height();
    gx_ = std::clamp<size_t>(static_cast<size_t>(core_.width() / edge), 4,
                             256);
    gy_ = std::clamp<size_t>(static_cast<size_t>(core_.height() / edge), 4,
                             256);
  }
  gw_ = core_.width() / static_cast<double>(gx_);
  gh_ = core_.height() / static_cast<double>(gy_);
  cap_ = opts.edge_capacity_tracks;
  h_usage_.assign((gx_ - 1) * gy_, 0.0);
  v_usage_.assign(gx_ * (gy_ - 1), 0.0);
  h_history_.assign(h_usage_.size(), 0.0);
  v_history_.assign(v_usage_.size(), 0.0);
}

size_t GlobalRouter::gcell_x_of(double x) const {
  const long k = static_cast<long>(std::floor((x - core_.xl) / gw_));
  return static_cast<size_t>(std::clamp(k, 0L, static_cast<long>(gx_) - 1));
}
size_t GlobalRouter::gcell_y_of(double y) const {
  const long k = static_cast<long>(std::floor((y - core_.yl) / gh_));
  return static_cast<size_t>(std::clamp(k, 0L, static_cast<long>(gy_) - 1));
}

double GlobalRouter::edge_cost(double usage, double history) const {
  // Cost of pushing ONE MORE wire through the edge.
  const double over = std::max(0.0, usage + 1.0 - cap_);
  return 1.0 + opts_.overflow_penalty * over + history;
}

namespace {
/// Visits [lo, hi) ordered edge indices of a straight run.
template <typename Fn>
void run_edges(size_t fixed, size_t from, size_t to, Fn&& fn) {
  const size_t lo = std::min(from, to), hi = std::max(from, to);
  for (size_t k = lo; k < hi; ++k) fn(fixed, k);
}
}  // namespace

double GlobalRouter::path_cost(size_t ax, size_t ay, size_t bx, size_t by,
                               size_t mid, bool horizontal_first) const {
  double cost = 0.0;
  if (horizontal_first) {
    // Row ay to column mid, vertical along mid, row by to bx.
    run_edges(ay, ax, mid, [&](size_t j, size_t i) {
      cost += edge_cost(h_usage_[h_idx(i, j)], h_history_[h_idx(i, j)]);
    });
    run_edges(mid, ay, by, [&](size_t i, size_t j) {
      cost += edge_cost(v_usage_[v_idx(i, j)], v_history_[v_idx(i, j)]);
    });
    run_edges(by, mid, bx, [&](size_t j, size_t i) {
      cost += edge_cost(h_usage_[h_idx(i, j)], h_history_[h_idx(i, j)]);
    });
  } else {
    // Column ax to row mid, horizontal along mid, column bx to by.
    run_edges(ax, ay, mid, [&](size_t i, size_t j) {
      cost += edge_cost(v_usage_[v_idx(i, j)], v_history_[v_idx(i, j)]);
    });
    run_edges(mid, ax, bx, [&](size_t j, size_t i) {
      cost += edge_cost(h_usage_[h_idx(i, j)], h_history_[h_idx(i, j)]);
    });
    run_edges(bx, mid, by, [&](size_t i, size_t j) {
      cost += edge_cost(v_usage_[v_idx(i, j)], v_history_[v_idx(i, j)]);
    });
  }
  return cost;
}

void GlobalRouter::apply_path(size_t ax, size_t ay, size_t bx, size_t by,
                              size_t mid, bool horizontal_first,
                              double delta) {
  if (horizontal_first) {
    run_edges(ay, ax, mid,
              [&](size_t j, size_t i) { h_usage_[h_idx(i, j)] += delta; });
    run_edges(mid, ay, by,
              [&](size_t i, size_t j) { v_usage_[v_idx(i, j)] += delta; });
    run_edges(by, mid, bx,
              [&](size_t j, size_t i) { h_usage_[h_idx(i, j)] += delta; });
  } else {
    run_edges(ax, ay, mid,
              [&](size_t i, size_t j) { v_usage_[v_idx(i, j)] += delta; });
    run_edges(mid, ax, bx,
              [&](size_t j, size_t i) { h_usage_[h_idx(i, j)] += delta; });
    run_edges(bx, mid, by,
              [&](size_t i, size_t j) { v_usage_[v_idx(i, j)] += delta; });
  }
}

double GlobalRouter::route_connection(const Connection& c) {
  // Candidate families: "horizontal_first" bends at column mid ∈ [ax..bx]
  // plus the dual bending at row mid ∈ [ay..by]; L shapes are the extremes.
  double best_cost = std::numeric_limits<double>::infinity();
  size_t best_mid = c.ax;
  bool best_hf = true;

  auto consider = [&](size_t mid, bool hf) {
    const double cost = path_cost(c.ax, c.ay, c.bx, c.by, mid, hf);
    if (cost < best_cost) {
      best_cost = cost;
      best_mid = mid;
      best_hf = hf;
    }
  };

  const size_t xlo = std::min(c.ax, c.bx), xhi = std::max(c.ax, c.bx);
  const size_t ylo = std::min(c.ay, c.by), yhi = std::max(c.ay, c.by);
  const int z = std::max(1, opts_.z_patterns);
  for (int t = 0; t <= z + 1; ++t) {
    const size_t mx =
        xlo + (xhi - xlo) * static_cast<size_t>(t) / static_cast<size_t>(z + 1);
    consider(mx, true);
    const size_t my =
        ylo + (yhi - ylo) * static_cast<size_t>(t) / static_cast<size_t>(z + 1);
    consider(my, false);
  }

  apply_path(c.ax, c.ay, c.bx, c.by, best_mid, best_hf, +1.0);
  // Remember the choice for rip-up.
  const size_t idx = static_cast<size_t>(&c - connections_.data());
  choice_[idx] = {best_mid, best_hf ? 1 : 0};

  const double len_gcells =
      static_cast<double>(xhi - xlo) + static_cast<double>(yhi - ylo);
  return len_gcells;
}

RouteStats GlobalRouter::route(const Placement& p) {
  std::fill(h_usage_.begin(), h_usage_.end(), 0.0);
  std::fill(v_usage_.begin(), v_usage_.end(), 0.0);
  std::fill(h_history_.begin(), h_history_.end(), 0.0);
  std::fill(v_history_.begin(), v_history_.end(), 0.0);
  connections_.clear();

  RouteStats stats;

  // --- net decomposition: Manhattan MST over distinct pin gcells ---------
  std::vector<std::pair<size_t, size_t>> nodes;
  for (NetId e = 0; e < nl_.num_nets(); ++e) {
    const Net& net = nl_.net(e);
    if (net.num_pins < 2) continue;
    if (net.num_pins > opts_.max_net_degree) {
      ++stats.skipped_nets;
      continue;
    }
    nodes.clear();
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const Pin& pin = nl_.pin(net.first_pin + k);
      const size_t i = gcell_x_of(p.x[pin.cell] + pin.dx);
      const size_t j = gcell_y_of(p.y[pin.cell] + pin.dy);
      if (std::find(nodes.begin(), nodes.end(), std::make_pair(i, j)) ==
          nodes.end())
        nodes.push_back({i, j});
    }
    if (nodes.size() < 2) continue;

    // Prim's MST on Manhattan gcell distance.
    std::vector<char> in_tree(nodes.size(), 0);
    std::vector<double> dist(nodes.size(),
                             std::numeric_limits<double>::infinity());
    std::vector<size_t> parent(nodes.size(), 0);
    in_tree[0] = 1;
    auto manh = [&](size_t a, size_t b) {
      return std::abs(static_cast<double>(nodes[a].first) -
                      static_cast<double>(nodes[b].first)) +
             std::abs(static_cast<double>(nodes[a].second) -
                      static_cast<double>(nodes[b].second));
    };
    for (size_t v = 1; v < nodes.size(); ++v) {
      dist[v] = manh(0, v);
      parent[v] = 0;
    }
    for (size_t step = 1; step < nodes.size(); ++step) {
      size_t best = nodes.size();
      for (size_t v = 0; v < nodes.size(); ++v)
        if (!in_tree[v] && (best == nodes.size() || dist[v] < dist[best]))
          best = v;
      in_tree[best] = 1;
      connections_.push_back({nodes[parent[best]].first,
                              nodes[parent[best]].second, nodes[best].first,
                              nodes[best].second, e});
      for (size_t v = 0; v < nodes.size(); ++v) {
        if (in_tree[v]) continue;
        const double d = manh(best, v);
        if (d < dist[v]) {
          dist[v] = d;
          parent[v] = best;
        }
      }
    }
  }
  choice_.assign(connections_.size(), {0, 1});

  // --- initial routing -----------------------------------------------------
  for (const Connection& c : connections_)
    stats.wirelength += route_connection(c);
  stats.routed_connections = connections_.size();

  // --- rip-up and reroute on overflowed edges ------------------------------
  for (int round = 0; round < opts_.rip_up_rounds; ++round) {
    // Mark overflowed edges, bump history.
    bool any_overflow = false;
    for (size_t k = 0; k < h_usage_.size(); ++k) {
      if (h_usage_[k] > cap_) {
        h_history_[k] += opts_.history_increment;
        any_overflow = true;
      }
    }
    for (size_t k = 0; k < v_usage_.size(); ++k) {
      if (v_usage_[k] > cap_) {
        v_history_[k] += opts_.history_increment;
        any_overflow = true;
      }
    }
    if (!any_overflow) break;

    for (size_t ci = 0; ci < connections_.size(); ++ci) {
      const Connection& c = connections_[ci];
      // Does the current path touch an overflowed edge?
      bool congested = false;
      const auto [mid, hf] = choice_[ci];
      const auto probe_h = [&](size_t j, size_t i) {
        if (h_usage_[h_idx(i, j)] > cap_) congested = true;
      };
      const auto probe_v = [&](size_t i, size_t j) {
        if (v_usage_[v_idx(i, j)] > cap_) congested = true;
      };
      if (hf) {
        run_edges(c.ay, c.ax, mid, probe_h);
        run_edges(mid, c.ay, c.by, probe_v);
        run_edges(c.by, mid, c.bx, probe_h);
      } else {
        run_edges(c.ax, c.ay, mid, probe_v);
        run_edges(mid, c.ax, c.bx, probe_h);
        run_edges(c.bx, mid, c.by, probe_v);
      }
      if (!congested) continue;
      apply_path(c.ax, c.ay, c.bx, c.by, mid, hf != 0, -1.0);
      route_connection(c);
    }
  }

  // --- statistics -----------------------------------------------------------
  const double pitch = (gw_ + gh_) / 2.0;
  stats.wirelength *= pitch;
  for (double u : h_usage_) {
    const double over = std::max(0.0, u - cap_);
    stats.overflow += over;
    stats.max_overflow = std::max(stats.max_overflow, over);
    if (over > 0.0) ++stats.overflowed_edges;
  }
  for (double u : v_usage_) {
    const double over = std::max(0.0, u - cap_);
    stats.overflow += over;
    stats.max_overflow = std::max(stats.max_overflow, over);
    if (over > 0.0) ++stats.overflowed_edges;
  }
  return stats;
}

double GlobalRouter::h_edge_usage(size_t i, size_t j) const {
  return h_usage_[h_idx(i, j)];
}
double GlobalRouter::v_edge_usage(size_t i, size_t j) const {
  return v_usage_[v_idx(i, j)];
}

}  // namespace complx
