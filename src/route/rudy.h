// RUDY (Rectangular Uniform wire DensitY) congestion estimation — the
// router-free congestion model Ripple [18] uses to drive its routability-
// aware feasibility projection (the paper's Section 5 discusses how SimPLR
// calls a global router while Ripple "estimates congestion directly").
//
// Each net deposits uniform wire demand over its bounding box:
//   horizontal demand density = net width  / bbox area  (wire running in x)
//   vertical   demand density = net height / bbox area
// Demand is compared against per-bin track capacity derived from a
// wires-per-unit-length supply, yielding directional congestion maps.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct RudyOptions {
  size_t bins_x = 0;  ///< 0 = auto (~2 rows per bin edge... design sized)
  size_t bins_y = 0;
  /// Routing supply: track length available per unit chip area, per
  /// direction. The absolute value only shifts the congestion scale.
  double supply_per_area = 0.35;
  /// Degenerate (zero-extent) nets get this minimal bbox, in row heights.
  double min_extent_rows = 1.0;
};

class CongestionMap {
 public:
  CongestionMap(const Netlist& nl, const RudyOptions& opts);

  /// Accumulates demand from all nets at placement `p` (resets first).
  void build(const Placement& p);

  size_t bins_x() const { return bx_; }
  size_t bins_y() const { return by_; }

  /// Demand / capacity per direction; >1 means overcongested.
  double h_congestion(size_t i, size_t j) const {
    return h_demand_[idx(i, j)] / cap_;
  }
  double v_congestion(size_t i, size_t j) const {
    return v_demand_[idx(i, j)] / cap_;
  }
  /// max(h, v) congestion of the bin containing a point.
  double congestion_at(double x, double y) const;

  /// Peak and average of max-direction congestion over all bins.
  double peak_congestion() const;
  double avg_congestion() const;
  /// Fraction of bins with max-direction congestion above `limit`.
  double overcongested_fraction(double limit = 1.0) const;

  const Rect& core() const { return core_; }

 private:
  size_t idx(size_t i, size_t j) const { return j * bx_ + i; }
  size_t bin_x_of(double x) const;
  size_t bin_y_of(double y) const;
  /// Adds demand of nets [begin, end) into the given demand grids.
  void deposit_net_range(const Placement& p, size_t begin, size_t end,
                         std::vector<double>& h_out,
                         std::vector<double>& v_out) const;

  const Netlist& nl_;
  RudyOptions opts_;
  Rect core_;
  size_t bx_ = 1, by_ = 1;
  double bw_ = 1.0, bh_ = 1.0;
  double cap_ = 1.0;  ///< per-bin directional track capacity (length units)
  std::vector<double> h_demand_;
  std::vector<double> v_demand_;
};

}  // namespace complx
