// complx-lint CLI: scan files/directories and report rule findings.
//
//   complx_lint [options] PATH...
//
// Directories are walked recursively for *.h *.hpp *.cpp *.cc *.cxx.
// Report files (--json/--sarif) are written atomically (temp + rename) so
// an interrupted run never leaves a torn report a later CI step parses.
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "report.h"
#include "util/atomic_file.h"

namespace fs = std::filesystem;
using complx::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] PATH...\n"
      "  PATH            file, or directory walked recursively for "
      "*.h *.hpp *.cpp *.cc *.cxx\n"
      "  --json FILE     write findings as JSON, atomically (use '-' for "
      "stdout)\n"
      "  --sarif FILE    write findings as SARIF 2.1.0, atomically ('-' for "
      "stdout)\n"
      "  --layers FILE   layer declaration for the A1/A2 include passes\n"
      "                  (default: tools/complx_lint/layers.toml under the\n"
      "                  first PATH's repo, when present; --layers none "
      "disables)\n"
      "  --cache FILE    incremental cache (content-hash keyed, written "
      "atomically)\n"
      "  --no-taint      skip the cross-file T1 determinism-taint pass\n"
      "  --threads N     worker threads for the per-file pass\n"
      "  --stats         print files/cache-hit/timing summary to stderr\n"
      "  --quiet         summary line only\n"
      "  --list-rules    print the rule catalog and exit\n",
      argv0);
  return 2;
}

/// Looks for tools/complx_lint/layers.toml at `root` and each parent, so
/// `complx_lint src apps` run from the repo root (or a subdir) finds the
/// committed declaration without flags.
std::string default_layers_file(const std::string& first_root) {
  std::error_code ec;
  fs::path dir = fs::absolute(first_root, ec);
  if (ec) return "";
  if (!fs::is_directory(dir, ec) || ec) dir = dir.parent_path();
  for (int up = 0; up < 8 && !dir.empty(); ++up) {
    const fs::path cand = dir / "tools" / "complx_lint" / "layers.toml";
    if (fs::exists(cand, ec) && !ec) return cand.generic_string();
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return "";
}

bool write_report(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  try {
    complx::AtomicWriteOptions opts;
    opts.fsync = false;  // CI reports are re-derivable; rename atomicity
                         // is what protects the downstream parse
    complx::write_file_atomic(path, content, opts);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "complx-lint: cannot write %s: %s\n", path.c_str(),
                 e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path, sarif_path, layers_path, cache_path;
  bool quiet = false, stats_out = false, taint = true;
  bool layers_explicit = false;
  std::size_t threads = 0;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : complx::lint::rule_catalog())
        std::printf("%-5s %s\n", r.id, r.summary);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats") {
      stats_out = true;
    } else if (arg == "--no-taint") {
      taint = false;
    } else if (arg == "--json") {
      const char* v = need_value(i);
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--sarif") {
      const char* v = need_value(i);
      if (!v) return usage(argv[0]);
      sarif_path = v;
    } else if (arg == "--layers") {
      const char* v = need_value(i);
      if (!v) return usage(argv[0]);
      layers_path = v;
      layers_explicit = true;
    } else if (arg == "--cache") {
      const char* v = need_value(i);
      if (!v) return usage(argv[0]);
      cache_path = v;
    } else if (arg == "--threads") {
      const char* v = need_value(i);
      if (!v) return usage(argv[0]);
      threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "complx-lint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  // Collect the file set, sorted so output order never depends on the
  // directory-entry order the OS happens to return.
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::exists(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "complx-lint: no such path: %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  complx::lint::AnalyzeOptions opts;
  opts.taint = taint;
  opts.cache_path = cache_path;
  opts.threads = threads;
  if (!layers_explicit) layers_path = default_layers_file(roots.front());
  if (!layers_path.empty() && layers_path != "none") {
    std::ifstream in(layers_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "complx-lint: cannot read layers file %s\n",
                   layers_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    opts.layers_toml = buf.str();
  }

  complx::lint::AnalyzeStats stats;
  const std::vector<Finding> all =
      complx::lint::analyze_paths(files, opts, &stats);

  std::map<std::string, size_t> per_rule;
  for (const Finding& f : all) {
    ++per_rule[f.rule];
    if (!quiet)
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
  }

  if (!json_path.empty() &&
      !write_report(json_path, complx::lint::render_json(files.size(), all)))
    return 2;
  if (!sarif_path.empty() &&
      !write_report(sarif_path, complx::lint::render_sarif(all)))
    return 2;

  if (stats_out) {
    std::fprintf(stderr,
                 "complx-lint: stats files=%zu cache_hits=%zu "
                 "cache_misses=%zu analyze_ms=%.2f\n",
                 stats.files, stats.cache_hits, stats.cache_misses,
                 stats.analyze_s * 1e3);
  }

  std::string breakdown;
  for (const auto& [rule, count] : per_rule)
    breakdown += " " + rule + "=" + std::to_string(count);
  std::printf("complx-lint: scanned %zu files, %zu finding%s%s%s\n",
              files.size(), all.size(), all.size() == 1 ? "" : "s",
              per_rule.empty() ? "" : " —", breakdown.c_str());
  return all.empty() ? 0 : 1;
}
