// complx-lint CLI: scan files/directories and report rule findings.
//
//   complx_lint [--json FILE] [--quiet] [--list-rules] PATH...
//
// Directories are walked recursively for *.h *.hpp *.cpp *.cc *.cxx.
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using complx::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json FILE] [--quiet] [--list-rules] PATH...\n"
               "  PATH            file, or directory walked recursively for "
               "*.h *.hpp *.cpp *.cc *.cxx\n"
               "  --json FILE     also write findings as JSON (use '-' for "
               "stdout)\n"
               "  --quiet         summary line only\n"
               "  --list-rules    print the rule catalog and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : complx::lint::rule_catalog())
        std::printf("%-5s %s\n", r.id, r.summary);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage(argv[0]);
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "complx-lint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  // Collect the file set, sorted so output order never depends on the
  // directory-entry order the OS happens to return.
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::exists(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "complx-lint: no such path: %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> all;
  for (const std::string& f : files) {
    std::vector<Finding> fs_ = complx::lint::lint_file(f);
    all.insert(all.end(), fs_.begin(), fs_.end());
  }

  std::map<std::string, size_t> per_rule;
  for (const Finding& f : all) {
    ++per_rule[f.rule];
    if (!quiet)
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
  }

  if (!json_path.empty()) {
    FILE* out = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "complx-lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(out, "{\n  \"files_scanned\": %zu,\n  \"findings\": [\n",
                 files.size());
    for (size_t i = 0; i < all.size(); ++i) {
      const Finding& f = all[i];
      std::fprintf(out,
                   "    {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                   "\"message\": \"%s\"}%s\n",
                   json_escape(f.file).c_str(), f.line,
                   json_escape(f.rule).c_str(),
                   json_escape(f.message).c_str(),
                   i + 1 < all.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout) std::fclose(out);
  }

  std::string breakdown;
  for (const auto& [rule, count] : per_rule)
    breakdown += " " + rule + "=" + std::to_string(count);
  std::printf("complx-lint: scanned %zu files, %zu finding%s%s%s\n",
              files.size(), all.size(), all.size() == 1 ? "" : "s",
              per_rule.empty() ? "" : " —", breakdown.c_str());
  return all.empty() ? 0 : 1;
}
