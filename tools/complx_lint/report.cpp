#include "report.h"

#include <sstream>

namespace complx::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string render_json(std::size_t files_scanned,
                        const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"findings\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"complx-lint\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(catalog[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}"
        << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const std::size_t line = f.line > 0 ? f.line : 1;
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << line << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace complx::lint
