// Incremental analysis cache.
//
// Maps (normalized path, content hash) to a serialized FileSummary so a
// warm run skips stripping, tokenization and the per-file rules — the
// dominant cost — for unchanged files. The cross-file passes (A1/A2/T1)
// always run fresh from the summaries, so cached and uncached runs produce
// byte-identical findings by construction.
//
// Format: versioned tab-separated text (one record per line, tabs,
// newlines and backslashes escaped), written atomically via
// util/atomic_file so an interrupted run
// never leaves a torn cache. Any malformation — wrong version header, a
// short line — discards the whole cache: it is a pure accelerator, never a
// source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "summary.h"

namespace complx::lint {

/// FNV-1a 64-bit. Stable across platforms; collisions are astronomically
/// unlikely at repo scale and cost at most one stale summary.
std::uint64_t content_hash(const std::string& content);

struct CacheEntry {
  std::uint64_t hash = 0;
  FileSummary summary;
};

using Cache = std::map<std::string, CacheEntry>;  ///< keyed by path

/// Loads a cache file. Missing or malformed caches yield an empty map.
Cache load_cache(const std::string& path);

/// Serializes and atomically writes the cache. Failures are swallowed —
/// a read-only checkout must still lint.
void save_cache(const std::string& path, const Cache& cache);

}  // namespace complx::lint
