#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "summary.h"

namespace complx::lint {

namespace {

// ---------------------------------------------------------------------------
// Source stripping: blank out comments / string literals (so banned tokens
// inside them never fire) while collecting the comment text per line (so
// suppressions and their justifications can be parsed).
// ---------------------------------------------------------------------------

struct SourceView {
  std::string code;                        ///< content, comments/strings blanked
  std::vector<std::string> comment_of_line;  ///< 0-based, comment text per line
};

SourceView strip_source(const std::string& content) {
  SourceView v;
  v.code.reserve(content.size());
  v.comment_of_line.emplace_back();

  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  size_t line = 0;

  auto emit_code = [&](char c) { v.code.push_back(c); };
  auto emit_blank = [&](char c) { v.code.push_back(c == '\n' ? '\n' : ' '); };
  auto note_comment = [&](char c) {
    if (c != '\n') v.comment_of_line[line].push_back(c);
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char n = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && n == '/') {
          state = State::LineComment;
          emit_blank(c);
        } else if (c == '/' && n == '*') {
          state = State::BlockComment;
          emit_blank(c);
          emit_blank(n);
          ++i;
        } else if (c == '"') {
          // Raw string? The prefix ident (R, u8R, LR, ...) ends in 'R'.
          bool raw = false;
          if (i > 0 && content[i - 1] == 'R') {
            size_t j = i + 1;
            raw_delim.clear();
            while (j < content.size() && content[j] != '(' &&
                   content[j] != '\n' && raw_delim.size() < 16)
              raw_delim.push_back(content[j++]);
            raw = j < content.size() && content[j] == '(';
          }
          state = raw ? State::RawString : State::String;
          emit_code(c);  // keep the quote so tokens don't merge across it
        } else if (c == '\'') {
          state = State::Char;
          emit_code(c);
        } else {
          emit_code(c);
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          note_comment(c);
        emit_blank(c);
        break;
      case State::BlockComment:
        if (c == '*' && n == '/') {
          state = State::Code;
          emit_blank(c);
          emit_blank(n);
          ++i;
        } else {
          note_comment(c);
          emit_blank(c);
        }
        break;
      case State::String:
        if (c == '\\' && n != '\0') {
          emit_blank(c);
          emit_blank(n);
          if (n == '\n') {
            ++line;
            v.comment_of_line.emplace_back();
          }
          ++i;
        } else if (c == '"') {
          state = State::Code;
          emit_code(c);
        } else {
          emit_blank(c);
        }
        break;
      case State::Char:
        if (c == '\\' && n != '\0') {
          emit_blank(c);
          emit_blank(n);
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          emit_code(c);
        } else {
          emit_blank(c);
        }
        break;
      case State::RawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (content.compare(i, closer.size(), c == ')' ? closer : "~") == 0) {
          for (size_t k = 0; k < closer.size(); ++k) emit_blank(content[i + k]);
          i += closer.size() - 1;
          state = State::Code;
        } else {
          emit_blank(c);
        }
        break;
      }
    }
    if (c == '\n') {
      ++line;
      v.comment_of_line.emplace_back();
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { Ident, Number, Punct } kind = Punct;
  std::string text;
  size_t line = 0;  ///< 1-based
  bool is_float = false;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool number_is_float(const std::string& s) {
  const bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (hex) return s.find_first_of("pP") != std::string::npos;
  if (s.find('.') != std::string::npos) return true;
  return s.find_first_of("eE") != std::string::npos;
}

std::vector<Token> tokenize(const std::string& code) {
  static const char* kMulti[] = {"...", "::", "->", "==", "!=", "<=", ">=",
                                 "&&", "||", "+=", "-=", "*=", "/=", ">>",
                                 "<<"};
  std::vector<Token> out;
  size_t line = 1;
  for (size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      out.push_back({Token::Ident, code.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (digit(c) || (c == '.' && i + 1 < code.size() && digit(code[i + 1]))) {
      size_t j = i;
      while (j < code.size()) {
        const char d = code[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i) {
          const char p = code[j - 1];
          if (p == 'e' || p == 'E' || p == 'p' || p == 'P')
            ++j;
          else
            break;
        } else {
          break;
        }
      }
      Token t{Token::Number, code.substr(i, j - i), line, false};
      t.is_float = number_is_float(t.text);
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Punctuation: longest multi-char match first.
    bool matched = false;
    for (const char* m : kMulti) {
      const size_t len = std::char_traits<char>::length(m);
      if (code.compare(i, len, m) == 0) {
        out.push_back({Token::Punct, m, line, false});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({Token::Punct, std::string(1, c), line, false});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// complx-lint: allow(D1): justification` on the same line
// or the line above a finding. Bare allow() — missing justification or no
// rule ids — is itself a finding (SUPP).
// ---------------------------------------------------------------------------

struct Suppressions {
  std::map<size_t, std::set<std::string>> allowed;  ///< 1-based line -> rules
  std::vector<Finding> missing_justification;

  bool covers(size_t line, const std::string& rule) const {
    for (size_t l : {line, line > 0 ? line - 1 : 0}) {
      auto it = allowed.find(l);
      if (it != allowed.end() && it->second.count(rule)) return true;
    }
    return false;
  }
};

std::string trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

Suppressions parse_suppressions(const std::string& path,
                                const std::vector<std::string>& comments) {
  Suppressions sup;
  for (size_t idx = 0; idx < comments.size(); ++idx) {
    const std::string& text = comments[idx];
    const size_t tag = text.find("complx-lint:");
    if (tag == std::string::npos) continue;
    const size_t open = text.find("allow(", tag);
    if (open == std::string::npos) continue;
    const size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    const size_t line = idx + 1;

    std::string ids = text.substr(open + 6, close - open - 6);
    std::replace(ids.begin(), ids.end(), ',', ' ');
    std::istringstream in(ids);
    std::string id;
    size_t id_count = 0;
    while (in >> id) {
      sup.allowed[line].insert(id);
      ++id_count;
    }
    if (id_count == 0) {
      sup.missing_justification.push_back(
          {path, line, "SUPP",
           "suppression names no rules: // complx-lint: allow(ID): "
           "<why this is safe>"});
      continue;
    }

    std::string just = text.substr(close + 1);
    const size_t b = just.find_first_not_of(" \t:-—");
    just = b == std::string::npos ? "" : trimmed(just.substr(b));
    if (just.size() < 8) {
      sup.missing_justification.push_back(
          {path, line, "SUPP",
           "suppression needs a justification: // complx-lint: allow(ID): "
           "<why this is safe>"});
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Path scoping helpers
// ---------------------------------------------------------------------------

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

bool in_any_dir(const std::string& path, std::initializer_list<const char*> dirs) {
  for (const char* d : dirs) {
    if (path_has(path, std::string("/") + d + "/")) return true;
    if (path.rfind(std::string(d) + "/", 0) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token-stream utilities
// ---------------------------------------------------------------------------

/// t[i] is "<": index one past the matching ">" (">>" closes two levels);
/// returns i if this is not a balanced template argument list.
size_t skip_template_args(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (t[j].kind == Token::Punct) {
      if (s == "<")
        ++depth;
      else if (s == ">")
        --depth;
      else if (s == ">>")
        depth -= 2;
      else if (s == ";" || s == "{" || s == "}")
        return i;  // `a < b` expression, not a template
      if (depth <= 0) return j + 1;
    }
  }
  return i;
}

/// t[i] is an opening brace/paren; index of the matching closer (or size()).
size_t find_match(const std::vector<Token>& t, size_t i, const char* open,
                  const char* close) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Punct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

bool is(const Token& t, const char* text) { return t.text == text; }

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> k = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return k;
}

/// Names declared (or assigned from a function returning) an unordered
/// associative container within this TU. Token-level, so cross-TU types are
/// invisible — good enough in practice: iteration almost always happens in
/// the file that owns the container.
std::set<std::string> collect_unordered_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Ident || !unordered_type_names().count(t[i].text))
      continue;
    size_t j = i + 1;
    if (j < t.size() && is(t[j], "<")) {
      const size_t after = skip_template_args(t, j);
      if (after == j) continue;
      j = after;
    }
    while (j < t.size() &&
           (is(t[j], "&") || is(t[j], "*") || t[j].text == "const"))
      ++j;
    if (j < t.size() && t[j].kind == Token::Ident) names.insert(t[j].text);
  }
  // Propagate through `auto x = f(...)` when f itself was recorded (e.g. a
  // local function whose declared return type is unordered).
  for (size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind == Token::Ident && names.count(t[i].text) &&
        is(t[i + 1], "(") && is(t[i - 1], "=") &&
        t[i - 2].kind == Token::Ident)
      names.insert(t[i - 2].text);
  }
  return names;
}

void rule_d1(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  const std::set<std::string> names = collect_unordered_names(t);
  if (names.empty()) return;

  for (size_t i = 0; i + 1 < t.size(); ++i) {
    // Range-for over an unordered container (any component of the postfix
    // chain after ':' counts: `for (auto& kv : obj.map_)`).
    if (t[i].kind == Token::Ident && is(t[i], "for") && is(t[i + 1], "(")) {
      const size_t close = find_match(t, i + 1, "(", ")");
      for (size_t j = i + 2; j < close; ++j) {
        if (!is(t[j], ":")) continue;
        for (size_t k = j + 1; k < close; ++k) {
          if (t[k].kind == Token::Ident) {
            if (names.count(t[k].text)) {
              out.push_back(
                  {path, t[k].line, "D1",
                   "iteration over unordered container '" + t[k].text +
                       "' — hash order is nondeterministic across "
                       "implementations; traverse by index or a sorted "
                       "snapshot"});
              break;
            }
          } else if (!is(t[k], ".") && !is(t[k], "->") && !is(t[k], "::")) {
            break;
          }
        }
        break;
      }
    }
    // Explicit iterator walk: name.begin() / name.cbegin() / ...
    if (t[i].kind == Token::Ident && names.count(t[i].text) &&
        i + 2 < t.size() && (is(t[i + 1], ".") || is(t[i + 1], "->")) &&
        t[i + 2].kind == Token::Ident) {
      static const std::set<std::string> kBegins = {"begin", "cbegin",
                                                    "rbegin", "crbegin"};
      if (kBegins.count(t[i + 2].text)) {
        out.push_back({path, t[i].line, "D1",
                       "iterator over unordered container '" + t[i].text +
                           "' — hash order is nondeterministic; traverse by "
                           "index or a sorted snapshot"});
      }
    }
  }
}

/// D2 source detection for one token. Returns the offending token rendered
/// for a message ("rand()", "this_thread", ...) or empty. Shared between
/// rule_d2 and the taint-seed extraction so the two passes can never
/// disagree on what counts as a nondeterminism source.
std::string d2_source_at(const std::string& path, const std::vector<Token>& t,
                         size_t i) {
  static const std::set<std::string> kAlways = {
      "srand",  "rand_r",  "drand48", "lrand48",
      "mrand48", "random_shuffle", "this_thread"};
  static const std::set<std::string> kCallOnly = {"rand", "time", "clock"};
  if (t[i].kind != Token::Ident) return "";
  const std::string& s = t[i].text;
  const bool member_access =
      i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"));
  if (kAlways.count(s)) return s;
  if (s == "random_device" && !path_has(path, "util/rng.h")) return s;
  if (kCallOnly.count(s) && !member_access && i + 1 < t.size() &&
      is(t[i + 1], "("))
    return s + "()";
  return "";
}

void rule_d2(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string src = d2_source_at(path, t, i);
    if (src.empty()) continue;
    const std::string& s = t[i].text;
    if (s == "random_device") {
      out.push_back({path, t[i].line, "D2",
                     "'std::random_device' outside util/rng.h — all entropy "
                     "must flow through the seeded Rng"});
    } else if (s == "time" || s == "clock") {
      out.push_back({path, t[i].line, "D2",
                     "'" + src +
                         "' makes results wall-clock dependent — "
                         "use util/timer.h for measurement and "
                         "explicit seeds for variation"});
    } else {
      out.push_back({path, t[i].line, "D2",
                     "'" + s +
                         "' is a banned nondeterminism source — use the "
                         "seeded util/rng.h Rng"});
    }
  }
}

/// Names declared `double x` / `float y` in this TU (params and locals),
/// including comma-separated declarator lists. Function names (`double f(`)
/// are excluded.
std::set<std::string> collect_fp_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Ident ||
        (t[i].text != "double" && t[i].text != "float"))
      continue;
    size_t j = i + 1;
    while (j < t.size() &&
           (is(t[j], "&") || is(t[j], "*") || t[j].text == "const"))
      ++j;
    if (j >= t.size() || t[j].kind != Token::Ident) continue;
    if (j + 1 < t.size() && is(t[j + 1], "(")) continue;  // function decl
    names.insert(t[j].text);
    // Follow `double a = ..., b = ...;` at paren-depth 0.
    int depth = 0;
    for (size_t k = j + 1; k < t.size(); ++k) {
      const std::string& s = t[k].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") {
        if (--depth < 0) break;
      }
      if (depth == 0 && (s == ";" || s == ":")) break;
      if (depth == 0 && s == "," && k + 1 < t.size() &&
          t[k + 1].kind == Token::Ident)
        names.insert(t[k + 1].text);
    }
  }
  return names;
}

void rule_n1(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  if (path_has(path, "util/fpcmp.h")) return;  // the designated comparator
  const std::set<std::string> fp_names = collect_fp_names(t);
  auto is_fp_operand = [&](const Token& tok) {
    if (tok.kind == Token::Number) return tok.is_float;
    if (tok.kind == Token::Ident) return fp_names.count(tok.text) > 0;
    return false;
  };
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Punct || (!is(t[i], "==") && !is(t[i], "!=")))
      continue;
    if (is_fp_operand(t[i - 1]) || is_fp_operand(t[i + 1])) {
      out.push_back({path, t[i].line, "N1",
                     "raw floating-point '" + t[i].text +
                         "' — state the intent with util/fpcmp.h "
                         "(exactly_equal / approx_equal / ulp_equal)"});
    }
  }
}

void rule_n2(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  if (!in_any_dir(path, {"core", "linalg", "qp"})) return;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!(t[i].kind == Token::Ident && is(t[i], "catch") &&
          is(t[i + 1], "(") && is(t[i + 2], "...") && is(t[i + 3], ")")))
      continue;
    size_t open = i + 4;
    while (open < t.size() && !is(t[open], "{")) ++open;
    const size_t close = find_match(t, open, "{", "}");
    bool handled = false;
    for (size_t j = open + 1; j < close; ++j) {
      if (t[j].kind != Token::Ident) continue;
      const std::string& s = t[j].text;
      if (s.rfind("log_", 0) == 0 || s.rfind("set_", 0) == 0 ||
          s == "throw" || s == "fail" || s == "abort" || s == "exit" ||
          s == "rethrow_exception" ||
          s.find("status") != std::string::npos ||
          s.find("Status") != std::string::npos ||
          s.find("error") != std::string::npos ||
          s.find("Error") != std::string::npos) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      out.push_back({path, t[i].line, "N2",
                     "silent 'catch (...)' in a numerical module — log the "
                     "failure, set a status, or rethrow"});
    }
  }
}

void rule_p1(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  if (path_has(path, "util/parallel.")) return;  // the concurrency authority
  static const std::set<std::string> kBanned = {
      "mutex",           "shared_mutex",      "recursive_mutex",
      "timed_mutex",     "shared_timed_mutex", "recursive_timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",          "atomic_flag",       "atomic_bool",
      "atomic_int",      "atomic_uint",       "atomic_size_t",
      "atomic_thread_fence", "atomic_signal_fence",
      "thread",          "jthread",           "lock_guard",
      "unique_lock",     "scoped_lock",       "shared_lock",
      "call_once",       "once_flag",         "future",
      "shared_future",   "promise",           "packaged_task",
      "async",           "latch",             "barrier",
      "counting_semaphore", "binary_semaphore", "stop_token"};
  for (const Token& tok : t) {
    if (tok.kind != Token::Ident) continue;
    if (kBanned.count(tok.text) ||
        tok.text.rfind("memory_order", 0) == 0) {
      out.push_back({path, tok.line, "P1",
                     "'" + tok.text +
                         "' outside util/parallel.* — the deterministic "
                         "execution layer is the single concurrency "
                         "authority (use parallel_for/parallel_sum, or the "
                         "annotated complx::Mutex when shared state is "
                         "unavoidable)"});
    }
  }
}

/// P2: every mutex declared in src/ must be tied into the clang
/// thread-safety annotation scheme — its name referenced by an annotation
/// argument in the same file, or the declaration wrapped inside a
/// COMPLX_CAPABILITY class (the annotated wrapper itself).
void rule_p2(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  if (!in_any_dir(path, {"src"})) return;
  static const std::set<std::string> kMutexTypes = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "Mutex"};
  static const std::set<std::string> kAnnotations = {
      "COMPLX_GUARDED_BY",  "COMPLX_PT_GUARDED_BY", "COMPLX_REQUIRES",
      "COMPLX_ACQUIRE",     "COMPLX_RELEASE",       "COMPLX_TRY_ACQUIRE",
      "COMPLX_EXCLUDES",    "COMPLX_ASSERT_CAPABILITY",
      "COMPLX_RETURN_CAPABILITY"};

  // Identifiers named inside annotation arguments.
  std::set<std::string> annotated;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Ident || !kAnnotations.count(t[i].text) ||
        !is(t[i + 1], "("))
      continue;
    const size_t close = find_match(t, i + 1, "(", ")");
    for (size_t j = i + 2; j < close && j < t.size(); ++j)
      if (t[j].kind == Token::Ident) annotated.insert(t[j].text);
  }

  // Token spans of class bodies whose head carries a capability attribute.
  std::vector<std::pair<size_t, size_t>> capability_spans;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Ident ||
        (!is(t[i], "class") && !is(t[i], "struct")))
      continue;
    bool capability = false;
    size_t j = i + 1;
    for (; j < t.size() && j < i + 64; ++j) {
      if (is(t[j], "{") || is(t[j], ";")) break;
      if (t[j].kind == Token::Ident &&
          (t[j].text == "COMPLX_CAPABILITY" ||
           t[j].text == "COMPLX_SCOPED_CAPABILITY"))
        capability = true;
    }
    if (capability && j < t.size() && is(t[j], "{"))
      capability_spans.emplace_back(j, find_match(t, j, "{", "}"));
  }
  auto in_capability_class = [&](size_t i) {
    for (const auto& [b, e] : capability_spans)
      if (i > b && i < e) return true;
    return false;
  };

  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Ident || !kMutexTypes.count(t[i].text)) continue;
    if (i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"))) continue;
    if (t[i + 1].kind != Token::Ident) continue;  // not `MutexType name`
    const std::string& name = t[i + 1].text;
    if (annotated.count(name) || in_capability_class(i)) continue;
    out.push_back(
        {path, t[i].line, "P2",
         "mutex '" + name +
             "' has no thread-safety annotation — name it in a "
             "COMPLX_GUARDED_BY(" + name +
             ") on the state it protects (or wrap it in a "
             "COMPLX_CAPABILITY class); see util/parallel.h"});
  }
}

void rule_io1(const std::string& path, const std::vector<Token>& t,
              std::vector<Finding>& out) {
  if (!in_any_dir(path, {"src"})) return;  // apps/tests/benches may stream
  if (path_has(path, "util/atomic_file.")) return;  // the write authority
  // Direct file-writing primitives. Reads (ifstream, fread) are fine — the
  // crash-safety contract is about what the system PUBLISHES: every artifact
  // must go through the temp+fsync+rename protocol of util/atomic_file.h so
  // a crash never leaves a half-written file.
  static const std::set<std::string> kBanned = {"ofstream", "fopen", "freopen",
                                                "fwrite"};
  for (const Token& tok : t) {
    if (tok.kind != Token::Ident || !kBanned.count(tok.text)) continue;
    out.push_back({path, tok.line, "IO1",
                   "'" + tok.text +
                       "' in src/ outside util/atomic_file.* — library "
                       "writes must be crash-safe; compose through "
                       "AtomicFileWriter / write_file_atomic"});
  }
}

void rule_s1(const std::string& path, const std::vector<Token>& t,
             std::vector<Finding>& out) {
  // Hot-path layers must stay name-free. Cell/Net names live in side
  // tables (NamePool) precisely so the solver/density/projection loops
  // never touch string data: one name lookup in a per-cell loop quietly
  // re-inflates the cache footprint the SoA layout paid for. Diagnostics
  // belong in io/, legal/ and the apps, which may resolve names freely.
  if (!in_any_dir(path, {"core", "linalg", "qp", "density", "projection"}))
    return;
  static const std::set<std::string> kBanned = {
      "cell_name", "net_name", "find_cell", "NamePool"};
  for (const Token& tok : t) {
    if (tok.kind != Token::Ident || !kBanned.count(tok.text)) continue;
    out.push_back({path, tok.line, "S1",
                   "'" + tok.text +
                       "' in a hot-path layer — core/linalg/qp/density/"
                       "projection must not touch cell/net names; pass ids "
                       "out and resolve names at the io/app boundary"});
  }
}

// ---------------------------------------------------------------------------
// Cross-file model extraction: #include edges and the function call graph.
// ---------------------------------------------------------------------------

/// Quoted includes, parsed from the raw content (the stripper blanks string
/// literals, which is exactly what an include path is).
std::vector<IncludeEdge> collect_includes(const std::string& content) {
  std::vector<IncludeEdge> out;
  size_t line = 1;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t eol = content.find('\n', pos);
    const std::string text =
        content.substr(pos, eol == std::string::npos ? eol : eol - pos);
    size_t i = text.find_first_not_of(" \t");
    if (i != std::string::npos && text[i] == '#') {
      i = text.find_first_not_of(" \t", i + 1);
      if (i != std::string::npos && text.compare(i, 7, "include") == 0) {
        const size_t q1 = text.find('"', i + 7);
        const size_t q2 =
            q1 == std::string::npos ? q1 : text.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          IncludeEdge e;
          e.target = text.substr(q1 + 1, q2 - q1 - 1);
          e.line = line;
          out.push_back(std::move(e));
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
  return out;
}

/// Identifiers that can never name a function being defined or called.
bool is_cpp_keywordish(const std::string& s) {
  static const std::set<std::string> k = {
      "if",       "for",      "while",     "switch",   "catch",
      "return",   "sizeof",   "alignof",   "alignas",  "decltype",
      "constexpr", "consteval", "constinit", "operator", "throw",
      "static_assert", "new", "delete",    "co_await", "co_return",
      "co_yield", "requires", "typeid",    "else",     "do",
      "void",     "int",      "double",    "float",    "char",
      "bool",     "auto",     "long",      "short",    "unsigned",
      "signed",   "case",     "goto",      "default",  "using",
      "namespace", "template", "typename", "explicit", "noexcept"};
  return k.count(s) > 0;
}

/// Extracts function definitions: name, line, direct D2 sources in the
/// body, callee names, taint-source annotations and allow(T1) coverage.
/// Token-level: the body is everything between the definition's braces
/// (lambdas inside attribute their calls to the enclosing function, which
/// is exactly the taint semantics we want).
std::vector<FunctionSummary> extract_functions(
    const std::string& path, const std::vector<Token>& t,
    const std::vector<std::string>& comments, const Suppressions& sup) {
  std::vector<FunctionSummary> out;
  for (size_t i = 1; i < t.size(); ++i) {
    if (!is(t[i], "(") || t[i - 1].kind != Token::Ident ||
        is_cpp_keywordish(t[i - 1].text))
      continue;
    const size_t close = find_match(t, i, "(", ")");
    if (close >= t.size()) continue;

    // Walk the tokens after the parameter list looking for the body brace;
    // anything that cannot appear between them (';', '=', ',', ...) makes
    // this a declaration or a call, not a definition.
    size_t k = close + 1;
    size_t body = t.size();
    bool in_init_list = false;
    const size_t budget = k + 220;
    while (k < t.size() && k < budget) {
      const Token& tok = t[k];
      if (is(tok, "{")) {
        body = k;
        break;
      }
      if (tok.kind == Token::Ident) {
        // Qualifier, trailing-return type component, or an annotation
        // macro such as COMPLX_EXCLUDES(mu_).
        if (k + 1 < t.size() && is(t[k + 1], "(")) {
          const size_t mclose = find_match(t, k + 1, "(", ")");
          if (mclose >= t.size()) break;
          k = mclose + 1;
          // In a ctor initializer list a member init is followed by ','
          // (next member) or '{' (the body).
          if (in_init_list && k < t.size() && is(t[k], ",")) ++k;
        } else {
          ++k;
        }
        continue;
      }
      if (is(tok, ":")) {  // ctor initializer list
        in_init_list = true;
        ++k;
        continue;
      }
      if (is(tok, "<")) {
        const size_t after = skip_template_args(t, k);
        if (after == k) break;
        k = after;
        continue;
      }
      if (is(tok, "&") || is(tok, "&&") || is(tok, "*") || is(tok, "->") ||
          is(tok, "::") || is(tok, ",")) {
        ++k;
        continue;
      }
      break;  // ';', '=', ')', ... — not a definition
    }
    if (body >= t.size()) continue;
    const size_t end = find_match(t, body, "{", "}");
    if (end >= t.size()) continue;

    FunctionSummary fn;
    fn.name = t[i - 1].text;
    fn.line = t[i - 1].line;
    fn.allow_t1 = sup.covers(fn.line, "T1");

    std::set<std::string> callees;
    for (size_t j = body + 1; j < end; ++j) {
      if (t[j].kind != Token::Ident) continue;
      if (fn.source_token.empty()) {
        const std::string src = d2_source_at(path, t, j);
        if (!src.empty()) fn.source_token = src;
      }
      if (j + 1 < end && is(t[j + 1], "(") && !is_cpp_keywordish(t[j].text))
        callees.insert(t[j].text);
    }
    fn.callees.assign(callees.begin(), callees.end());

    // `// complx-lint: taint-source` anywhere from the line above the
    // definition through the body marks the function an explicit source.
    if (fn.source_token.empty()) {
      const size_t first = fn.line > 1 ? fn.line - 1 : 1;
      const size_t last = std::min(t[end].line, comments.size());
      for (size_t l = first; l <= last; ++l) {
        const std::string& c = comments[l - 1];
        if (c.find("complx-lint:") != std::string::npos &&
            c.find("taint-source") != std::string::npos) {
          fn.source_token = "taint-source annotation";
          break;
        }
      }
    }
    out.push_back(std::move(fn));
    i = end;  // a body never contains another non-lambda definition
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> k = {
      {"A1", "no upward #include against the layer DAG declared in "
             "tools/complx_lint/layers.toml"},
      {"A2", "no #include cycles among the scanned files"},
      {"D1", "no iteration over unordered associative containers"},
      {"D2", "no nondeterminism sources (rand/srand/random_device/time/"
             "clock/this_thread) outside util/rng.h"},
      {"N1", "no raw ==/!= on floating-point operands outside util/fpcmp.h"},
      {"N2", "catch (...) in core/linalg/qp must log, set status or rethrow"},
      {"P1", "no std mutexes/atomics/threads outside util/parallel.*"},
      {"P2", "every mutex in src/ carries a COMPLX_GUARDED_BY/capability "
             "annotation"},
      {"T1", "no call chain from core/linalg/qp/projection to a "
             "nondeterminism source (determinism taint)"},
      {"IO1", "no direct file-writing primitives (ofstream/fopen/fwrite) in "
              "src/ outside util/atomic_file.*"},
      {"S1", "no cell/net name access (cell_name/net_name/find_cell/"
             "NamePool) in core/linalg/qp/density/projection"},
      {"SUPP", "every allow(...) suppression names rules and carries a "
               "justification"},
      {"IO", "tool-level error: a file could not be read or a layer "
             "declaration could not be parsed"},
  };
  return k;
}

FileSummary summarize_source(const std::string& path,
                             const std::string& content) {
  FileSummary summary;
  summary.path = normalized(path);
  const std::string& norm = summary.path;

  const SourceView view = strip_source(content);
  const std::vector<Token> tokens = tokenize(view.code);
  Suppressions sup = parse_suppressions(norm, view.comment_of_line);

  // A suppression comment may be a multi-line block: extend each allowance
  // down through comment-only/blank lines so it reaches the first line of
  // actual code below the block.
  {
    std::set<size_t> code_lines;
    for (const Token& t : tokens) code_lines.insert(t.line);
    const size_t max_line = view.comment_of_line.size() + 1;
    for (auto& [start, rules] : sup.allowed) {
      for (size_t l = start; l + 1 <= max_line && !code_lines.count(l + 1);
           ++l)
        sup.allowed[l + 1].insert(rules.begin(), rules.end());
    }
  }

  std::vector<Finding> raw;
  rule_d1(norm, tokens, raw);
  rule_d2(norm, tokens, raw);
  rule_n1(norm, tokens, raw);
  rule_n2(norm, tokens, raw);
  rule_p1(norm, tokens, raw);
  rule_p2(norm, tokens, raw);
  rule_io1(norm, tokens, raw);
  rule_s1(norm, tokens, raw);

  for (Finding& f : raw)
    if (!sup.covers(f.line, f.rule)) summary.findings.push_back(std::move(f));
  summary.findings.insert(summary.findings.end(),
                          sup.missing_justification.begin(),
                          sup.missing_justification.end());

  summary.includes = collect_includes(content);
  for (IncludeEdge& e : summary.includes) {
    e.allow_a1 = sup.covers(e.line, "A1");
    e.allow_a2 = sup.covers(e.line, "A2");
  }
  summary.functions =
      extract_functions(norm, tokens, view.comment_of_line, sup);
  return summary;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  return analyze_sources({{path, content}});
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {{normalized(path), 0, "IO", "cannot read file"}};
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

}  // namespace complx::lint
