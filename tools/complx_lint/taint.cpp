#include "taint.h"

#include <algorithm>
#include <map>
#include <set>

namespace complx::lint {

namespace {

struct Node {
  const FileSummary* file = nullptr;
  const FunctionSummary* fn = nullptr;
  bool tainted = false;
  int via = -1;  ///< callee node the taint arrived through; -1 = direct seed
};

bool entry_scope(const std::string& path) {
  for (const char* d : {"core", "linalg", "qp", "projection"}) {
    if (path.find(std::string("/") + d + "/") != std::string::npos ||
        path.rfind(std::string("src/") + d + "/", 0) == 0)
      return true;
  }
  return false;
}

}  // namespace

void check_taint(const std::vector<FileSummary>& files,
                 std::vector<Finding>& out) {
  // Deterministic node order: files arrive sorted by path; functions are in
  // definition order within a file.
  std::vector<Node> nodes;
  for (const FileSummary& f : files)
    for (const FunctionSummary& fn : f.functions)
      nodes.push_back({&f, &fn, !fn.source_token.empty(), -1});

  std::map<std::string, std::vector<int>> by_name;
  for (size_t i = 0; i < nodes.size(); ++i)
    by_name[nodes[i].fn->name].push_back(static_cast<int>(i));

  // Fixpoint: taint a caller when any callee name resolves to a tainted
  // node. Iterating nodes in index order each round keeps the `via`
  // witness deterministic; a node flips at most once, so this terminates
  // even with call cycles.
  for (bool changed = true; changed;) {
    changed = false;
    for (Node& n : nodes) {
      if (n.tainted) continue;
      for (const std::string& callee : n.fn->callees) {
        const auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        int hit = -1;
        for (int c : it->second) {
          if (nodes[static_cast<size_t>(c)].tainted) {
            hit = c;
            break;
          }
        }
        if (hit >= 0) {
          n.tainted = true;
          n.via = hit;
          changed = true;
          break;
        }
      }
    }
  }

  for (const Node& n : nodes) {
    // Fires only on taint that arrived via a call: a direct source in the
    // body is D2's finding (possibly suppressed there — which is exactly
    // why the seed still propagates).
    if (!n.tainted || n.via < 0) continue;
    if (!entry_scope(n.file->path) || n.fn->allow_t1) continue;

    std::string chain = n.fn->name;
    std::string source_tok;
    std::string source_loc;
    // Follow the witness edges; `via` chains strictly toward a seed, but
    // cap the walk defensively.
    const Node* cur = &n;
    for (size_t guard = 0; guard < nodes.size() + 1; ++guard) {
      if (cur->via < 0) {
        source_tok = cur->fn->source_token;
        source_loc =
            cur->file->path + ":" + std::to_string(cur->fn->line);
        break;
      }
      cur = &nodes[static_cast<size_t>(cur->via)];
      chain += " -> " + cur->fn->name;
    }
    out.push_back(
        {n.file->path, n.fn->line, "T1",
         "'" + n.fn->name + "' reaches nondeterminism source '" + source_tok +
             "' via " + chain + " (" + source_loc +
             ") — core/linalg/qp/projection must be entropy- and "
             "clock-free; break the call chain or route through the seeded "
             "util/rng.h Rng"});
  }
}

}  // namespace complx::lint
