// Layer-DAG include checking (rules A1/A2).
//
// The architecture's layering is DECLARED, not inferred: layers.toml
// commits the intended DAG (util at the bottom, apps at the top), and the
// include-graph pass holds every `#include "..."` in the scanned set
// against it. Two rules fall out:
//
//   A1  an include whose target lives in a HIGHER layer than the including
//       file — util/ reaching into netlist/, core/ reaching into io/.
//   A2  an include cycle among the scanned files (possible even within a
//       layer, which A1 cannot see).
//
// The declaration format is a minimal TOML subset — an array of tables:
//
//   [[layer]]
//   name = "util"
//   rank = 1
//   dirs = ["src/util"]
//
// Lower rank = lower layer. A file may include files of the same or lower
// rank; same-rank sibling directories may include each other. Files that
// match no layer (tests, tools) are unconstrained by A1 but still
// participate in A2 cycle detection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.h"
#include "summary.h"

namespace complx::lint {

struct Layer {
  std::string name;
  int rank = 0;
  std::vector<std::string> dirs;  ///< path prefixes, '/'-separated
};

struct LayerMap {
  std::vector<Layer> layers;

  /// Index into layers for a repo path ("src/util/log.h"), or -1. Matches
  /// the longest declared dir prefix, anchored at the start of the path or
  /// at a '/' boundary (so "a/b/src/util/log.h" matches "src/util").
  int layer_of(const std::string& path) const;

  /// Layer of an include target ("util/log.h"): tries the target verbatim
  /// and with "src/" prepended (quoted includes in this repo are rooted at
  /// src/). Returns -1 when the target matches no declared layer.
  int layer_of_include(const std::string& target) const;
};

/// Parses the layers.toml subset. On failure returns false and sets
/// `error` to a one-line diagnosis (with its 1-based line number).
bool parse_layers_toml(const std::string& text, LayerMap& out,
                       std::string& error, std::size_t& error_line);

/// The A1/A2 include-graph pass over the summarized file set. Appends
/// findings; deterministic for a fixed input order.
void check_layers(const std::vector<FileSummary>& files, const LayerMap& map,
                  std::vector<Finding>& out);

}  // namespace complx::lint
