// analyze_sources / analyze_paths: the multi-pass orchestration.
//
//   1. per-file pass — parallel over util/parallel's deterministic pool,
//      each file writing its own result slot (no shared mutable state), a
//      content-hash cache short-circuiting unchanged files;
//   2. cross-file passes — A1/A2 layering against layers.toml and the T1
//      determinism taint, always run fresh from the summaries.
//
// Findings sort by (file, line, rule) so cold, warm and any-thread-count
// runs emit byte-identical reports.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "cache.h"
#include "layers.h"
#include "lint.h"
#include "summary.h"
#include "taint.h"
#include "util/parallel.h"

namespace complx::lint {

namespace {

std::string normalized_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

std::vector<Finding> run_passes(std::vector<FileSummary> summaries,
                                const std::vector<std::uint64_t>& hashes,
                                const AnalyzeOptions& opts,
                                AnalyzeStats* stats,
                                std::chrono::steady_clock::time_point t0,
                                std::size_t cache_hits) {
  std::vector<Finding> findings;
  for (const FileSummary& s : summaries)
    findings.insert(findings.end(), s.findings.begin(), s.findings.end());

  if (!opts.layers_toml.empty()) {
    LayerMap map;
    std::string error;
    std::size_t error_line = 0;
    if (!parse_layers_toml(opts.layers_toml, map, error, error_line)) {
      findings.push_back({"layers.toml", error_line, "IO",
                          "cannot parse layer declaration: " + error});
    } else {
      check_layers(summaries, map, findings);
    }
  }
  if (opts.taint) check_taint(summaries, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  if (!opts.cache_path.empty()) {
    Cache fresh;
    for (size_t i = 0; i < summaries.size(); ++i) {
      // In `m[k] = v` the RHS is sequenced first — moving the summary
      // before reading .path as the key would empty every key.
      const std::string key = summaries[i].path;
      fresh[key] = {hashes[i], std::move(summaries[i])};
    }
    save_cache(opts.cache_path, fresh);
  }

  if (stats != nullptr) {
    stats->files = hashes.size();
    stats->cache_hits = cache_hits;
    stats->cache_misses = hashes.size() - cache_hits;
    stats->analyze_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return findings;
}

}  // namespace

std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const AnalyzeOptions& opts,
                                     AnalyzeStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  if (opts.threads > 0) complx::set_global_threads(opts.threads);

  const Cache cache =
      opts.cache_path.empty() ? Cache{} : load_cache(opts.cache_path);

  const size_t n = files.size();
  std::vector<FileSummary> summaries(n);
  std::vector<std::uint64_t> hashes(n, 0);
  std::vector<unsigned char> hit(n, 0);

  complx::parallel_for(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::string path = normalized_path(files[i].path);
          hashes[i] = content_hash(files[i].content);
          const auto it = cache.find(path);
          if (it != cache.end() && it->second.hash == hashes[i]) {
            summaries[i] = it->second.summary;
            hit[i] = 1;
          } else {
            summaries[i] = summarize_source(path, files[i].content);
          }
        }
      },
      /*chunk=*/1);

  size_t cache_hits = 0;
  for (unsigned char h : hit) cache_hits += h;
  return run_passes(std::move(summaries), hashes, opts, stats, t0,
                    cache_hits);
}

std::vector<Finding> analyze_paths(const std::vector<std::string>& paths,
                                   const AnalyzeOptions& opts,
                                   AnalyzeStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  if (opts.threads > 0) complx::set_global_threads(opts.threads);

  const Cache cache =
      opts.cache_path.empty() ? Cache{} : load_cache(opts.cache_path);

  const size_t n = paths.size();
  std::vector<FileSummary> summaries(n);
  std::vector<std::uint64_t> hashes(n, 0);
  std::vector<unsigned char> hit(n, 0);

  complx::parallel_for(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::string path = normalized_path(paths[i]);
          std::ifstream in(paths[i], std::ios::binary);
          if (!in) {
            summaries[i].path = path;
            summaries[i].findings.push_back(
                {path, 0, "IO", "cannot read file"});
            continue;
          }
          std::ostringstream buf;
          buf << in.rdbuf();
          const std::string content = buf.str();
          hashes[i] = content_hash(content);
          const auto it = cache.find(path);
          if (it != cache.end() && it->second.hash == hashes[i]) {
            summaries[i] = it->second.summary;
            hit[i] = 1;
          } else {
            summaries[i] = summarize_source(path, content);
          }
        }
      },
      /*chunk=*/1);

  size_t cache_hits = 0;
  for (unsigned char h : hit) cache_hits += h;
  return run_passes(std::move(summaries), hashes, opts, stats, t0,
                    cache_hits);
}

}  // namespace complx::lint
