#include "cache.h"

#include <fstream>
#include <sstream>

#include "util/atomic_file.h"

namespace complx::lint {

namespace {

// Bump whenever the summary semantics change: an old cache must never
// feed a new analyzer.
constexpr const char* kFormat = "complx-lint-cache 1";

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: out.push_back(s[i]);
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  for (;;) {
    const size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

bool parse_size(const std::string& s, size_t& out) {
  try {
    out = std::stoull(s);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::uint64_t content_hash(const std::string& content) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : content) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Record grammar (fields tab-separated, strings escaped):
//   F <path> <hash> <#findings> <#includes> <#functions>
//   f <line> <rule> <message>                (finding, owned by last F)
//   i <line> <a1> <a2> <target>              (include edge)
//   d <line> <a_t1> <source_token> <name> <callee>...   (function def)
Cache load_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != kFormat) return {};

  Cache cache;
  CacheEntry* entry = nullptr;
  size_t want_f = 0, want_i = 0, want_d = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = split_tabs(line);
    if (f[0] == "F") {
      if (f.size() != 6) return {};
      const std::string p = unesc(f[1]);
      CacheEntry e;
      try {
        e.hash = std::stoull(f[2], nullptr, 16);
      } catch (...) {
        return {};
      }
      if (!parse_size(f[3], want_f) || !parse_size(f[4], want_i) ||
          !parse_size(f[5], want_d))
        return {};
      e.summary.path = p;
      entry = &(cache[p] = std::move(e));
    } else if (f[0] == "f") {
      if (entry == nullptr || f.size() != 4 || want_f == 0) return {};
      Finding fd;
      fd.file = entry->summary.path;
      if (!parse_size(f[1], fd.line)) return {};
      fd.rule = unesc(f[2]);
      fd.message = unesc(f[3]);
      entry->summary.findings.push_back(std::move(fd));
      --want_f;
    } else if (f[0] == "i") {
      if (entry == nullptr || f.size() != 5 || want_i == 0) return {};
      IncludeEdge e;
      if (!parse_size(f[1], e.line)) return {};
      e.allow_a1 = f[2] == "1";
      e.allow_a2 = f[3] == "1";
      e.target = unesc(f[4]);
      entry->summary.includes.push_back(std::move(e));
      --want_i;
    } else if (f[0] == "d") {
      if (entry == nullptr || f.size() < 5 || want_d == 0) return {};
      FunctionSummary fn;
      if (!parse_size(f[1], fn.line)) return {};
      fn.allow_t1 = f[2] == "1";
      fn.source_token = unesc(f[3]);
      fn.name = unesc(f[4]);
      for (size_t i = 5; i < f.size(); ++i) fn.callees.push_back(unesc(f[i]));
      entry->summary.functions.push_back(std::move(fn));
      --want_d;
    } else {
      return {};
    }
  }
  // A truncated trailing record means the counts don't balance; the last
  // entry is the only suspect, so drop just it (the header promised counts
  // per record, and all earlier records closed theirs).
  if ((want_f || want_i || want_d) && entry != nullptr)
    cache.erase(entry->summary.path);
  return cache;
}

void save_cache(const std::string& path, const Cache& cache) {
  std::ostringstream out;
  out << kFormat << "\n";
  char hex[32];
  for (const auto& [p, e] : cache) {
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(e.hash));
    out << "F\t" << esc(p) << "\t" << hex << "\t" << e.summary.findings.size()
        << "\t" << e.summary.includes.size() << "\t"
        << e.summary.functions.size() << "\n";
    for (const Finding& fd : e.summary.findings)
      out << "f\t" << fd.line << "\t" << esc(fd.rule) << "\t"
          << esc(fd.message) << "\n";
    for (const IncludeEdge& ie : e.summary.includes)
      out << "i\t" << ie.line << "\t" << (ie.allow_a1 ? 1 : 0) << "\t"
          << (ie.allow_a2 ? 1 : 0) << "\t" << esc(ie.target) << "\n";
    for (const FunctionSummary& fn : e.summary.functions) {
      out << "d\t" << fn.line << "\t" << (fn.allow_t1 ? 1 : 0) << "\t"
          << esc(fn.source_token) << "\t" << esc(fn.name);
      for (const std::string& c : fn.callees) out << "\t" << esc(c);
      out << "\n";
    }
  }
  try {
    complx::AtomicWriteOptions opts;
    opts.fsync = false;  // a cache is disposable; speed over durability
    complx::write_file_atomic(path, out.str(), opts);
  } catch (...) {
    // Read-only checkout or full disk: the lint result is unaffected.
  }
}

}  // namespace complx::lint
