#include "layers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace complx::lint {

namespace {

std::string trimmed(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strips an unquoted trailing `# comment` (quoted '#' never appears in
/// our values, which are bare dir names).
std::string without_comment(const std::string& s) {
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

bool parse_quoted(const std::string& s, size_t& pos, std::string& out) {
  pos = s.find('"', pos);
  if (pos == std::string::npos) return false;
  const size_t end = s.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = s.substr(pos + 1, end - pos - 1);
  pos = end + 1;
  return true;
}

/// True when `path` contains `dir` as a '/'-anchored prefix of a suffix:
/// matches at position 0 or right after a '/', and is followed by '/'.
bool dir_prefix_match(const std::string& path, const std::string& dir) {
  size_t at = 0;
  while ((at = path.find(dir, at)) != std::string::npos) {
    const bool left_ok = at == 0 || path[at - 1] == '/';
    const size_t end = at + dir.size();
    const bool right_ok = end < path.size() && path[end] == '/';
    if (left_ok && right_ok) return true;
    ++at;
  }
  return false;
}

}  // namespace

int LayerMap::layer_of(const std::string& path) const {
  int best = -1;
  size_t best_len = 0;
  for (size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& dir : layers[i].dirs) {
      if (dir.size() > best_len && dir_prefix_match(path, dir)) {
        best = static_cast<int>(i);
        best_len = dir.size();
      }
    }
  }
  return best;
}

int LayerMap::layer_of_include(const std::string& target) const {
  const int direct = layer_of(target);
  if (direct >= 0) return direct;
  return layer_of("src/" + target);
}

bool parse_layers_toml(const std::string& text, LayerMap& out,
                       std::string& error, std::size_t& error_line) {
  out.layers.clear();
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  Layer* current = nullptr;
  bool explicit_ranks = false;

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trimmed(without_comment(raw));
    if (line.empty()) continue;

    if (line == "[[layer]]") {
      out.layers.emplace_back();
      current = &out.layers.back();
      current->rank = static_cast<int>(out.layers.size());  // declaration order
      continue;
    }
    if (line[0] == '[') {
      error = "unknown table '" + line + "' (only [[layer]] is understood)";
      error_line = line_no;
      return false;
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos || current == nullptr) {
      error = current == nullptr
                  ? "key outside a [[layer]] table"
                  : "expected key = value";
      error_line = line_no;
      return false;
    }
    const std::string key = trimmed(line.substr(0, eq));
    const std::string val = trimmed(line.substr(eq + 1));

    if (key == "name") {
      size_t pos = 0;
      if (!parse_quoted(val, pos, current->name)) {
        error = "name must be a quoted string";
        error_line = line_no;
        return false;
      }
    } else if (key == "rank") {
      try {
        current->rank = std::stoi(val);
        explicit_ranks = true;
      } catch (...) {
        error = "rank must be an integer";
        error_line = line_no;
        return false;
      }
    } else if (key == "dirs") {
      if (val.empty() || val.front() != '[' || val.back() != ']') {
        error = "dirs must be a single-line array of quoted strings";
        error_line = line_no;
        return false;
      }
      size_t pos = 0;
      std::string dir;
      while (parse_quoted(val, pos, dir)) {
        // Normalize: no leading "./", no trailing '/'.
        if (dir.rfind("./", 0) == 0) dir.erase(0, 2);
        while (!dir.empty() && dir.back() == '/') dir.pop_back();
        if (!dir.empty()) current->dirs.push_back(dir);
      }
      if (current->dirs.empty()) {
        error = "dirs array is empty";
        error_line = line_no;
        return false;
      }
    } else {
      error = "unknown key '" + key + "'";
      error_line = line_no;
      return false;
    }
  }

  if (out.layers.empty()) {
    error = "no [[layer]] tables declared";
    error_line = line_no;
    return false;
  }
  for (const Layer& l : out.layers) {
    if (l.name.empty() || l.dirs.empty()) {
      error = "layer '" + l.name + "' is missing name or dirs";
      error_line = line_no;
      return false;
    }
  }
  (void)explicit_ranks;
  return true;
}

namespace {

/// Resolves include targets to indices in `files`: a target "util/log.h"
/// matches any scanned path equal to it or ending in "/util/log.h".
std::vector<size_t> resolve_target(const std::vector<FileSummary>& files,
                                   const std::string& target) {
  std::vector<size_t> out;
  const std::string suffix = "/" + target;
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& p = files[i].path;
    if (p == target ||
        (p.size() > suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0))
      out.push_back(i);
  }
  return out;
}

}  // namespace

void check_layers(const std::vector<FileSummary>& files, const LayerMap& map,
                  std::vector<Finding>& out) {
  // --- A1: upward includes against the declared DAG -----------------------
  for (const FileSummary& f : files) {
    const int from = map.layer_of(f.path);
    if (from < 0) continue;  // undeclared territory (tests, tools)
    for (const IncludeEdge& e : f.includes) {
      const int to = map.layer_of_include(e.target);
      if (to < 0 || e.allow_a1) continue;
      if (map.layers[static_cast<size_t>(to)].rank >
          map.layers[static_cast<size_t>(from)].rank) {
        out.push_back(
            {f.path, e.line, "A1",
             "#include \"" + e.target + "\" reaches UP the layer DAG: '" +
                 map.layers[static_cast<size_t>(from)].name + "' (rank " +
                 std::to_string(map.layers[static_cast<size_t>(from)].rank) +
                 ") may not depend on '" +
                 map.layers[static_cast<size_t>(to)].name + "' (rank " +
                 std::to_string(map.layers[static_cast<size_t>(to)].rank) +
                 ") — invert the dependency or move the code; the DAG is "
                 "declared in tools/complx_lint/layers.toml"});
      }
    }
  }

  // --- A2: include cycles among the scanned files -------------------------
  // Resolve edges to scanned-file indices, then peel leaves (Kahn): every
  // node left has a path back to itself. Deterministic: files arrive
  // sorted and edges are visited in declaration order.
  const size_t n = files.size();
  std::vector<std::vector<size_t>> adj(n);
  std::vector<size_t> out_deg(n, 0);
  std::vector<std::vector<size_t>> radj(n);
  for (size_t i = 0; i < n; ++i) {
    std::set<size_t> targets;
    for (const IncludeEdge& e : files[i].includes)
      for (size_t j : resolve_target(files, e.target))
        if (j != i) targets.insert(j);
    for (size_t j : targets) {
      adj[i].push_back(j);
      radj[j].push_back(i);
    }
    out_deg[i] = adj[i].size();
  }
  std::vector<size_t> stack;
  for (size_t i = 0; i < n; ++i)
    if (out_deg[i] == 0) stack.push_back(i);
  std::vector<bool> removed(n, false);
  while (!stack.empty()) {
    const size_t v = stack.back();
    stack.pop_back();
    removed[v] = true;
    for (size_t u : radj[v])
      if (!removed[u] && --out_deg[u] == 0) stack.push_back(u);
  }

  // Report each cycle once: walk from the smallest-path unreported cyclic
  // node along cyclic successors until the walk closes.
  std::vector<size_t> cyclic;
  for (size_t i = 0; i < n; ++i)
    if (!removed[i]) cyclic.push_back(i);
  std::sort(cyclic.begin(), cyclic.end(), [&](size_t a, size_t b) {
    return files[a].path < files[b].path;
  });
  std::vector<bool> reported(n, false);
  for (size_t start : cyclic) {
    if (reported[start]) continue;
    std::vector<size_t> walk{start};
    std::vector<bool> on_walk(n, false);
    on_walk[start] = true;
    size_t v = start;
    size_t closes_at = start;
    for (;;) {
      size_t next = n;
      for (size_t u : adj[v])
        if (!removed[u]) {
          next = u;
          break;
        }
      if (next == n) break;  // unreachable for cyclic nodes; defensive
      if (on_walk[next]) {
        closes_at = next;
        break;
      }
      walk.push_back(next);
      on_walk[next] = true;
      v = next;
    }
    // Trim the tail leading into the cycle; keep the loop itself.
    size_t first = 0;
    while (first < walk.size() && walk[first] != closes_at) ++first;
    std::string chain;
    for (size_t i = first; i < walk.size(); ++i) {
      reported[walk[i]] = true;
      chain += files[walk[i]].path + " -> ";
    }
    chain += files[closes_at].path;

    // Anchor the finding at `start`'s include that enters the cycle.
    size_t line = 0;
    bool allowed = false;
    for (const IncludeEdge& e : files[start].includes) {
      for (size_t j : resolve_target(files, e.target)) {
        if (j != start && !removed[j]) {
          line = e.line;
          allowed = e.allow_a2;
          break;
        }
      }
      if (line) break;
    }
    if (!allowed) {
      out.push_back({files[start].path, line, "A2",
                     "include cycle: " + chain +
                         " — break it with a forward declaration or an "
                         "interface header"});
    }
  }
}

}  // namespace complx::lint
