// Per-file analysis summary — the repo model the cross-file passes run on.
//
// summarize_source() distills one translation unit into everything the
// analyzer will ever need again: the per-file findings (already
// suppression-filtered), the #include edges (with their suppression
// state, for A1/A2), and the function-level call-graph fragment (for the
// T1 determinism-taint pass). The summary is what the incremental cache
// persists: a warm run deserializes summaries for unchanged files instead
// of re-tokenizing them, and the cross-file passes — which are cheap and
// depend on the *set* of files — always run fresh.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.h"

namespace complx::lint {

/// One `#include "..."` directive (angle includes carry no layer
/// information here and are ignored).
struct IncludeEdge {
  std::string target;  ///< the include string, e.g. "density/grid.h"
  std::size_t line = 0;
  bool allow_a1 = false;  ///< an allow(A1) suppression covers this line
  bool allow_a2 = false;
};

/// One function definition: the call-graph node T1 propagates over.
struct FunctionSummary {
  std::string name;  ///< last identifier before '(' (unqualified)
  std::size_t line = 0;
  /// Non-empty when the body directly contains a D2 nondeterminism source
  /// or the function carries a `// complx-lint: taint-source` annotation;
  /// holds the offending token (e.g. "time()") for the finding message.
  std::string source_token;
  bool allow_t1 = false;  ///< an allow(T1) suppression covers the definition
  std::vector<std::string> callees;  ///< names called from the body, sorted
};

struct FileSummary {
  std::string path;  ///< normalized ('/'-separated)
  std::vector<Finding> findings;  ///< per-file rules, suppression-filtered
  std::vector<IncludeEdge> includes;
  std::vector<FunctionSummary> functions;
};

/// Runs the per-file rules and extracts the cross-file model for one file.
FileSummary summarize_source(const std::string& path,
                             const std::string& content);

}  // namespace complx::lint
