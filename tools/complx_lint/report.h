// Machine-readable report rendering: the stable JSON format consumed by
// scripts/run_static_analysis.sh, and SARIF 2.1.0 for GitHub code
// scanning. Both renderers are pure (string in, string out) so the CLI
// can write them atomically and tests can pin the bytes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.h"

namespace complx::lint {

std::string json_escape(const std::string& s);

/// The tool's own JSON report: {"files_scanned": N, "findings": [...]}.
std::string render_json(std::size_t files_scanned,
                        const std::vector<Finding>& findings);

/// SARIF 2.1.0 with one run, rule metadata from rule_catalog(), and one
/// result per finding (level "error"; line 0 findings clamp to 1 as SARIF
/// regions are 1-based).
std::string render_sarif(const std::vector<Finding>& findings);

}  // namespace complx::lint
