// complx-lint: a project-specific static-analysis pass.
//
// The placement engine makes two promises that ordinary tests can only
// sample, never prove: bitwise thread-count-independent results
// (docs/PARALLELISM.md) and NaN/Inf-free recovery (docs/ROBUSTNESS.md).
// Both are one careless edit away from silently breaking — an
// unordered_map iterated into a floating-point reduction, a std::rand()
// in a tiebreaker, a raw `==` in a convergence check. complx-lint scans
// the repository's own sources (a token-level scanner; no compiler
// needed) and enforces those invariants as named, suppressible rules:
//
//   D1  no iteration over unordered associative containers — hash order
//       is not part of any determinism contract; take a sorted snapshot
//       or traverse by index instead.
//   D2  no nondeterminism sources: std::rand/srand/drand48/random_device
//       (outside util/rng.h, the seeded-RNG authority), time()/clock()
//       calls, std::this_thread (thread-id-dependent behaviour).
//   N1  no raw ==/!= on floating-point operands outside util/fpcmp.h,
//       the designated comparator helper.
//   N2  catch (...) in src/core, src/linalg, src/qp must log, set a
//       status, or rethrow — never swallow silently.
//   P1  no mutexes/atomics/threads outside util/parallel.* — the
//       deterministic-reduction layer is the single concurrency
//       authority.
//
// Suppression: `// complx-lint: allow(D1): <justification>` on the same
// line or the line above. The justification is mandatory; a bare
// allow() is itself reported (rule SUPP).
#pragma once

#include <string>
#include <vector>

namespace complx::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< "D1", "D2", "N1", "N2", "P1", "SUPP", "IO"
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The enforced rule set, for --list-rules and the docs.
const std::vector<RuleInfo>& rule_catalog();

/// Lints one translation unit given its contents. `path` is used both for
/// reporting and for rule scoping (e.g. util/parallel.* is exempt from P1;
/// N2 applies only under core/, linalg/ and qp/).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Reads and lints a file from disk. Unreadable files yield an "IO"
/// finding rather than a crash.
std::vector<Finding> lint_file(const std::string& path);

}  // namespace complx::lint
