// complx-lint: a project-specific static-analysis pass.
//
// The placement engine makes two promises that ordinary tests can only
// sample, never prove: bitwise thread-count-independent results
// (docs/PARALLELISM.md) and NaN/Inf-free recovery (docs/ROBUSTNESS.md).
// Both are one careless edit away from silently breaking — an
// unordered_map iterated into a floating-point reduction, a std::rand()
// in a tiebreaker, a raw `==` in a convergence check. complx-lint scans
// the repository's own sources (a token-level scanner; no compiler
// needed) and enforces those invariants as named, suppressible rules.
//
// Two kinds of passes run:
//
//  * per-file rules, on each translation unit in isolation:
//
//   D1  no iteration over unordered associative containers — hash order
//       is not part of any determinism contract; take a sorted snapshot
//       or traverse by index instead.
//   D2  no nondeterminism sources: std::rand/srand/drand48/random_device
//       (outside util/rng.h, the seeded-RNG authority), time()/clock()
//       calls, std::this_thread (thread-id-dependent behaviour).
//   N1  no raw ==/!= on floating-point operands outside util/fpcmp.h,
//       the designated comparator helper.
//   N2  catch (...) in src/core, src/linalg, src/qp must log, set a
//       status, or rethrow — never swallow silently.
//   P1  no std mutexes/atomics/threads outside util/parallel.* — the
//       deterministic-reduction layer is the single concurrency
//       authority.
//   P2  every mutex declared in src/ must carry a thread-safety
//       annotation: its name referenced by a COMPLX_GUARDED_BY /
//       COMPLX_PT_GUARDED_BY / COMPLX_REQUIRES / COMPLX_ACQUIRE /
//       COMPLX_RELEASE / COMPLX_EXCLUDES argument in the same file, or
//       the declaration inside a COMPLX_CAPABILITY-annotated class.
//   IO1 no direct file-writing primitives (ofstream/fopen/freopen/
//       fwrite) in src/ outside util/atomic_file.*, the crash-safe
//       write authority.
//   S1  no cell/net name access (cell_name/net_name/find_cell/NamePool)
//       in src/core, src/linalg, src/qp, src/density or src/projection —
//       names are pooled in side tables so the hot layers never touch
//       string data; resolve ids to names at the io/app boundary.
//
//  * cross-file passes, on the whole scanned file set (analyze_sources):
//
//   A1  no upward #include against the layer DAG declared in
//       tools/complx_lint/layers.toml (util at the bottom, apps at the
//       top) — e.g. util/ reaching into netlist/ is reported.
//   A2  no #include cycles among the scanned files.
//   T1  determinism taint: a function defined under src/core, src/linalg,
//       src/qp or src/projection must not reach a nondeterminism source
//       (the D2 set, or a function annotated `// complx-lint:
//       taint-source`) through any chain of calls. This catches the
//       one-hop laundering a per-file D2 scan cannot see — including
//       sources that were locally allow(D2)-suppressed.
//
// The machine-readable rule list is rule_catalog() — the single source of
// truth behind `complx_lint --list-rules`, the docs table, and the
// fixture tests. (A failed file read is reported under the pseudo-rule
// "IO", also in the catalog.)
//
// Suppression: `// complx-lint: allow(D1): <justification>` on the same
// line or the line above. The justification is mandatory; a bare
// allow() — no justification or no rule ids — is itself reported (rule
// SUPP). A1 suppressions go on the offending #include line; T1
// suppressions on the entry function's definition line.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace complx::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< one of rule_catalog()'s ids — see lint.h header
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The enforced rule set — the single source of truth for --list-rules,
/// the docs table, and the SARIF rule metadata.
const std::vector<RuleInfo>& rule_catalog();

/// One in-memory source file handed to the analyzer.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Options for the multi-pass analyzer.
struct AnalyzeOptions {
  /// Contents of the layer declaration (layers.toml). Empty disables the
  /// A1/A2 include passes.
  std::string layers_toml;
  /// Run the cross-file determinism-taint pass (rule T1).
  bool taint = true;
  /// Path of the incremental cache file. Empty disables caching. The cache
  /// maps content hashes to per-file summaries so unchanged files skip
  /// tokenization and per-file rules entirely; it is written atomically
  /// (temp + rename) and produces byte-identical findings on warm runs.
  std::string cache_path;
  /// Worker threads for the per-file pass; 0 = the process-wide default
  /// (util/parallel.h global_threads()).
  std::size_t threads = 0;
};

/// Instrumentation from one analyze_sources run.
struct AnalyzeStats {
  std::size_t files = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double analyze_s = 0.0;  ///< per-file + cross-file pass wall time
};

/// The full multi-pass analysis: per-file rules on every file (parallel,
/// cache-accelerated), then the cross-file passes (A1/A2 layering, T1
/// taint) over the whole set. Findings are sorted by (file, line, rule).
std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const AnalyzeOptions& opts = {},
                                     AnalyzeStats* stats = nullptr);

/// analyze_sources over files read from disk. Unreadable files yield an
/// "IO" finding rather than a crash.
std::vector<Finding> analyze_paths(const std::vector<std::string>& paths,
                                   const AnalyzeOptions& opts = {},
                                   AnalyzeStats* stats = nullptr);

/// Lints one translation unit given its contents: the per-file rules plus
/// the degenerate single-file taint pass. `path` is used both for
/// reporting and for rule scoping (e.g. util/parallel.* is exempt from P1;
/// N2 applies only under core/, linalg/ and qp/).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Reads and lints a file from disk. Unreadable files yield an "IO"
/// finding rather than a crash.
std::vector<Finding> lint_file(const std::string& path);

}  // namespace complx::lint
