// Determinism-taint pass (rule T1).
//
// Builds a function-level call graph from the per-file summaries (name-based
// resolution — a deliberate over-approximation: a call site `f(...)` may
// reach any scanned definition named `f`), seeds taint at every function
// whose body directly contains a D2 nondeterminism source or that carries a
// `// complx-lint: taint-source` annotation, and propagates taint backwards
// over call edges to a fixpoint.
//
// A finding fires for a function DEFINED under src/core, src/linalg, src/qp
// or src/projection whose taint arrives VIA A CALL — directly-tainted
// bodies are already D2's findings, and an allow(D2)-suppressed source
// still seeds taint, so laundering a suppressed source through a wrapper
// does not escape. Each finding carries a deterministic witness chain
// (entry -> ... -> source) so the report is actionable without rerunning.
#pragma once

#include <string>
#include <vector>

#include "lint.h"
#include "summary.h"

namespace complx::lint {

/// The T1 pass over the summarized file set. Appends findings;
/// deterministic for a fixed input order.
void check_taint(const std::vector<FileSummary>& files,
                 std::vector<Finding>& out);

}  // namespace complx::lint
