// Quickstart: generate a small circuit, run the full ComPLx flow (global
// placement -> legalization -> detailed placement), and report quality.
//
//   ./quickstart [num_cells] [seed]
//
// This is the 30-second tour of the public API; see mixed_size_soc.cpp,
// region_constraints.cpp and timing_driven.cpp for the advanced features.
#include <cstdio>
#include <cstdlib>

#include "core/placer.h"
#include "dp/detailed.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

int main(int argc, char** argv) {
  set_log_level(LogLevel::Info);
  const size_t cells = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. A synthetic circuit (use bookshelf::read_bookshelf for real designs).
  GenParams params;
  params.name = "quickstart";
  params.num_cells = cells;
  params.seed = seed;
  params.utilization = 0.65;
  const Netlist netlist = generate_circuit(params);
  std::printf("circuit: %zu cells, %zu nets, %zu pins, core %.0fx%.0f\n",
              netlist.num_cells(), netlist.num_nets(), netlist.num_pins(),
              netlist.core().width(), netlist.core().height());

  // 2. Global placement with the default ComPLx configuration.
  ComplxConfig config;
  ComplxPlacer placer(netlist, config);
  const PlaceResult gp = placer.place();
  std::printf("global placement: %d iterations, final lambda %.3f, "
              "overflow %.1f%%, duality gap %.1f%%\n",
              gp.iterations, gp.final_lambda, 100.0 * gp.final_overflow,
              100.0 * gp.trace.back().gap);
  std::printf("  lower-bound HPWL %.0f | anchor (upper-bound) HPWL %.0f\n",
              hpwl(netlist, gp.lower_bound), hpwl(netlist, gp.anchors));

  // 3. Legalization of the anchor placement (the C-feasible iterate).
  Placement placement = gp.anchors;
  const LegalizeResult legal = TetrisLegalizer(netlist).legalize(placement);
  std::printf("legalization: %zu cells placed, avg displacement %.1f\n",
              legal.placed,
              legal.total_displacement /
                  static_cast<double>(std::max<size_t>(legal.placed, 1)));

  // 4. Detailed placement.
  const DetailedResult dp = DetailedPlacer(netlist).refine(placement);
  std::printf("detailed placement: HPWL %.0f -> %.0f (%.2f%% gain), "
              "%d passes\n",
              dp.initial_hpwl, dp.final_hpwl,
              100.0 * (dp.initial_hpwl - dp.final_hpwl) / dp.initial_hpwl,
              dp.passes);

  std::printf("final legal placement: HPWL %.0f, legal: %s\n",
              hpwl(netlist, placement),
              TetrisLegalizer::is_legal(netlist, placement) ? "yes" : "NO");
  return 0;
}
