// Mixed-size placement example: an SoC-like design with movable macros,
// fixed blockages and an ISPD-2006-style density target. Demonstrates
//   * macro shredding inside the feasibility projection,
//   * per-macro lambda scaling,
//   * the contest "scaled HPWL" metric,
//   * exporting the result in Bookshelf format.
#include <cstdio>
#include <filesystem>
#include <string_view>

#include "bookshelf/writer.h"
#include "core/placer.h"
#include "density/metric.h"
#include "dp/detailed.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

int main() {
  set_log_level(LogLevel::Info);

  GenParams params;
  params.name = "soc";
  params.num_cells = 8000;
  params.num_movable_macros = 6;
  params.num_fixed_macros = 4;
  params.utilization = 0.5;
  params.target_density = 0.7;  // whitespace must be distributed
  params.seed = 2026;
  const Netlist netlist = generate_circuit(params);

  size_t macros = 0;
  double macro_area = 0.0;
  for (const Cell& c : netlist.cells())
    if (c.is_macro()) {
      ++macros;
      macro_area += c.area();
    }
  std::printf("SoC: %zu cells, %zu movable macros (%.0f%% of movable "
              "area), target density %.2f\n",
              netlist.num_cells(), macros,
              100.0 * macro_area / netlist.movable_area(),
              netlist.target_density());

  ComplxConfig config;  // density target inherited from the netlist
  ComplxPlacer placer(netlist, config);
  const PlaceResult gp = placer.place();

  // Report macro behaviour: macros stabilize early and end up overlap-free
  // after legalization.
  std::printf("global placement done: %d iterations, overflow %.1f%%\n",
              gp.iterations, 100.0 * gp.final_overflow);
  for (CellId id : netlist.movable_cells()) {
    const Cell& c = netlist.cell(id);
    if (!c.is_macro()) continue;
    const std::string_view nm = netlist.cell_name(id);
    std::printf("  macro %-6.*s %4.0fx%-4.0f at (%7.1f, %7.1f)\n",
                static_cast<int>(nm.size()), nm.data(), c.width, c.height,
                gp.anchors.x[id], gp.anchors.y[id]);
  }

  Placement placement = gp.anchors;
  TetrisLegalizer(netlist).legalize(placement);
  DetailedPlacer(netlist).refine(placement);

  const DensityMetric metric = evaluate_scaled_hpwl(netlist, placement);
  std::printf("result: HPWL %.0f, overflow penalty %.2f%%, scaled HPWL "
              "%.0f, legal: %s\n",
              metric.hpwl, metric.overflow_percent, metric.scaled_hpwl,
              TetrisLegalizer::is_legal(netlist, placement) ? "yes" : "NO");

  // Export the placed design in Bookshelf format.
  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "complx_soc").string();
  std::filesystem::create_directories(out_dir);
  Netlist placed = netlist;
  placed.apply(placement);
  write_bookshelf(placed, out_dir, "soc_placed");
  std::printf("bookshelf written to %s/soc_placed.aux\n", out_dir.c_str());
  return 0;
}
