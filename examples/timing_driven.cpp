// Timing-driven placement example (Section 5, Formula 13, and S6):
//   1. place once, run static timing analysis,
//   2. raise net weights on critical nets (slack-based) and raise the
//      per-cell criticality vector that scales the Lagrangian penalty,
//   3. re-place and compare worst slack / critical-path length / HPWL.
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "timing/sta.h"
#include "timing/weighting.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

int main() {
  set_log_level(LogLevel::Info);

  GenParams params;
  params.name = "timing";
  params.num_cells = 6000;
  params.seed = 21;
  params.utilization = 0.6;
  Netlist netlist = generate_circuit(params);

  const std::vector<char> registers = choose_registers(netlist, 0.12, 7);
  TimingOptions topts;
  topts.wire_delay_per_unit = 0.02;
  TimingGraph timing(netlist, registers, topts);

  auto place = [&]() {
    ComplxConfig config;
    ComplxPlacer placer(netlist, config);
    return placer.place();
  };

  // ---- pass 1: wirelength-driven ---------------------------------------
  const PlaceResult first = place();
  TimingReport rep1 = timing.analyze(first.anchors);
  const auto path1 = timing.critical_path(first.anchors, rep1);
  std::printf("pass 1 (WL-driven):    period %.2f, worst slack %+.2f, "
              "violations %zu, critical path %zu cells, HPWL %.0f\n",
              rep1.period, rep1.worst_slack, rep1.violations, path1.size(),
              hpwl(netlist, first.anchors));

  // ---- pass 2: timing-driven re-placement --------------------------------
  // Freeze the measured period as the constraint so slacks are comparable.
  TimingOptions fixed = topts;
  fixed.period = 0.92 * rep1.period;  // demand 8% faster than achieved
  TimingGraph constrained(netlist, registers, fixed);
  TimingReport tight = constrained.analyze(first.anchors);
  std::printf("tightened period %.2f: %zu violating cells\n", fixed.period,
              tight.violations);

  slack_based_net_weights(netlist, tight, /*strength=*/4.0);
  Vec criticality(netlist.num_cells(), 1.0);
  update_criticality(criticality, tight, /*delta=*/0.5);

  ComplxConfig config;
  ComplxPlacer placer(netlist, config);
  placer.set_cell_criticality(criticality);  // Formula 13 penalty scaling
  const PlaceResult second = placer.place();

  TimingReport rep2 = constrained.analyze(second.anchors);
  std::printf("pass 2 (timing-driven): worst slack %+.2f (was %+.2f), "
              "violations %zu (was %zu), HPWL %.0f\n",
              rep2.worst_slack, tight.worst_slack, rep2.violations,
              tight.violations, hpwl(netlist, second.anchors));

  // ---- finish the flow ---------------------------------------------------
  Placement p = second.anchors;
  TetrisLegalizer(netlist).legalize(p);
  DetailedPlacer(netlist).refine(p);
  TimingReport final_rep = constrained.analyze(p);
  std::printf("final legal placement: worst slack %+.2f, HPWL %.0f, "
              "legal: %s\n",
              final_rep.worst_slack, hpwl(netlist, p),
              TetrisLegalizer::is_legal(netlist, p) ? "yes" : "NO");
  return 0;
}
