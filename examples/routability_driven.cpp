// Routability-driven placement example: the SimPLR/Ripple usage of ComPLx.
//   1. place wirelength-driven, estimate congestion (RUDY) and globally
//      route the result;
//   2. re-place with the routability mode (congestion-driven cell inflation
//      inside the feasibility projection);
//   3. compare peak congestion, routed overflow and HPWL.
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "route/global_router.h"
#include "route/rudy.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

namespace {

struct Outcome {
  double peak_rudy;
  double routed_peak_overflow;
  double routed_wirelength;
  double legal_hpwl;
};

Outcome run(const Netlist& nl, bool routability) {
  ComplxConfig config;
  config.routability.enabled = routability;
  config.routability.rudy.supply_per_area = 0.9;
  ComplxPlacer placer(nl, config);
  const PlaceResult gp = placer.place();

  RudyOptions score;
  score.supply_per_area = 0.9;
  CongestionMap congestion(nl, score);
  congestion.build(gp.anchors);

  RouterOptions ropts;
  ropts.edge_capacity_tracks = 14.0;
  GlobalRouter router(nl, ropts);
  const RouteStats routed = router.route(gp.anchors);

  Placement p = gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  return {congestion.peak_congestion(), routed.max_overflow,
          routed.wirelength, hpwl(nl, p)};
}

}  // namespace

int main() {
  set_log_level(LogLevel::Info);

  GenParams params;
  params.name = "routability";
  params.num_cells = 6000;
  params.seed = 31;
  params.utilization = 0.78;  // tight: congestion-prone
  const Netlist netlist = generate_circuit(params);
  std::printf("design: %zu cells at %.0f%% utilization\n",
              netlist.num_cells(), 100 * 0.78);

  const Outcome plain = run(netlist, false);
  std::printf("wirelength-driven : peak RUDY %.2f | routed peak overflow "
              "%.0f | routed WL %.3g | HPWL %.0f\n",
              plain.peak_rudy, plain.routed_peak_overflow,
              plain.routed_wirelength, plain.legal_hpwl);

  const Outcome routed = run(netlist, true);
  std::printf("routability-driven: peak RUDY %.2f | routed peak overflow "
              "%.0f | routed WL %.3g | HPWL %.0f\n",
              routed.peak_rudy, routed.routed_peak_overflow,
              routed.routed_wirelength, routed.legal_hpwl);

  std::printf("\ncongestion peak %+0.1f%%, HPWL %+0.2f%% — the SimPLR "
              "trade-off: routing health for a small wirelength premium.\n",
              100.0 * (routed.peak_rudy - plain.peak_rudy) / plain.peak_rudy,
              100.0 * (routed.legal_hpwl - plain.legal_hpwl) /
                  plain.legal_hpwl);
  return 0;
}
