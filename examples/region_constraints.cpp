// Region-constraint example (Section S5): keep a clock domain's cells
// inside a hard region by enforcing the constraint inside the feasibility
// projection — no fake nets, no objective hacks. Reports HPWL with and
// without the constraint (the paper observes HPWL often *improves*).
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "projection/regions.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

namespace {

/// Rebuilds `raw` with region `box` imposed on every 10th standard cell
/// (a stand-in for a clock domain / logic hierarchy).
Netlist constrain(const Netlist& raw, const Rect& box, size_t stride) {
  Netlist nl;
  const RegionId region = nl.add_region({"domain", box});
  size_t constrained = 0;
  for (CellId id = 0; id < raw.num_cells(); ++id) {
    Cell c = raw.cell(id);
    if (c.movable() && !c.is_macro() && id % stride == 0) {
      c.region = region;
      ++constrained;
    }
    nl.add_cell(c, raw.cell_name(id));
  }
  for (NetId e = 0; e < raw.num_nets(); ++e) {
    const Net& n = raw.net(e);
    std::vector<Pin> pins;
    for (uint32_t k = 0; k < n.num_pins; ++k)
      pins.push_back(raw.pin(n.first_pin + k));
    nl.add_net(raw.net_name(e), n.weight, pins);
  }
  nl.set_core(raw.core());
  nl.set_target_density(raw.target_density());
  nl.finalize();
  std::printf("constrained %zu cells to [%.0f,%.0f]x[%.0f,%.0f]\n",
              constrained, box.xl, box.xh, box.yl, box.yh);
  return nl;
}

double place_and_measure(const Netlist& nl, const char* label) {
  ComplxConfig config;
  ComplxPlacer placer(nl, config);
  const PlaceResult gp = placer.place();
  Placement p = gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  const double wl = hpwl(nl, p);
  std::printf("%-14s HPWL %.0f | region satisfied in anchors: %s\n", label,
              wl, regions_satisfied(nl, gp.anchors) ? "yes" : "n/a");
  return wl;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Info);

  GenParams params;
  params.name = "regions";
  params.num_cells = 6000;
  params.seed = 11;
  params.utilization = 0.55;
  const Netlist base = generate_circuit(params);

  const Rect& core = base.core();
  const Rect box{core.xl + 0.1 * core.width(), core.yl + 0.1 * core.height(),
                 core.xl + 0.45 * core.width(),
                 core.yl + 0.45 * core.height()};
  const Netlist constrained = constrain(base, box, 10);

  const double free_wl = place_and_measure(base, "unconstrained:");
  const double region_wl = place_and_measure(constrained, "with region:");
  std::printf("\nHPWL ratio with/without region: %.4f (paper Figure 4: "
              "0.994 — constraints need not cost wirelength)\n",
              region_wl / free_wl);
  return 0;
}
