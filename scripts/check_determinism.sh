#!/usr/bin/env bash
# Builds two trees and runs the determinism test label on each:
#   1. a ThreadSanitizer tree  — proves the parallel kernels are race-free
#      (a data race would void the bitwise-reproducibility argument), and
#   2. a release (RelWithDebInfo) tree — proves the bitwise guarantees hold
#      under the optimization level users actually run.
#
# The label includes the projection-path regressions in
# test_golden_determinism: concurrent per-region spreading must be bitwise
# thread-invariant, and the boundary-mote ownership fix (exclusive
# first-region-wins assignment) is what makes the per-region mote lists
# disjoint — under TSan, a reintroduced double-enrollment would surface as
# a data race between two regions spreading the same mote.
#
# Usage: scripts/check_determinism.sh [build-root]
# Exit code 0 iff both trees pass `ctest -L determinism`.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_root=${1:-"$repo_root/build-determinism"}
jobs=$(nproc 2>/dev/null || echo 2)

run_tree() {
  local name=$1; shift
  local dir="$build_root/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$repo_root" "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs" --target \
    complx test_parallel test_golden_determinism test_health test_linalg >/dev/null
  echo "=== [$name] ctest -L determinism ==="
  ctest --test-dir "$dir" -L determinism --output-on-failure
}

run_tree tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOMPLX_SANITIZE=thread

run_tree release \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOMPLX_SANITIZE=

echo "determinism check: OK (tsan + release)"
