#!/usr/bin/env python3
"""Plot the paper-figure CSVs emitted by the bench binaries.

Usage: run the benches (they drop CSVs in the working directory), then

    python3 scripts/plot_figures.py [--dir build/bench] [--out figures]

Produces:
    fig1_progressions.png   L / Phi / Pi vs iteration   (paper Figure 1)
    fig2_shreds.png         shred clouds per macro      (paper Figure 2)
    fig3_scalability.png    final lambda + iterations vs nets (Figure 3)

Requires matplotlib; degrades to a clear error message without it.
"""
import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    if not rows:
        raise SystemExit(f"{path}: empty")
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default="build/bench", help="CSV directory")
    ap.add_argument("--out", default="figures", help="output directory")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib not installed; pip install matplotlib")

    os.makedirs(args.out, exist_ok=True)

    # ---- Figure 1: L, Phi, Pi progressions --------------------------------
    p = os.path.join(args.dir, "fig1_progressions.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        it = [float(r["iteration"]) for r in rows]
        fig, ax1 = plt.subplots(figsize=(7, 4.5))
        ax1.plot(it, [float(r["lagrangian"]) for r in rows], "r-",
                 label="L (Lagrangian)")
        ax1.plot(it, [float(r["phi_lower"]) for r in rows], "b--",
                 label="Phi (interconnect)")
        ax1.plot(it, [float(r["pi"]) for r in rows], "g-.",
                 label="Pi (L1 distance to legal)")
        ax1.set_xlabel("ComPLx iteration")
        ax1.set_ylabel("cost (layout units)")
        ax1.set_yscale("log")
        ax1.legend()
        ax1.set_title("Figure 1: progressions on the BIGBLUE4 analogue")
        fig.tight_layout()
        fig.savefig(os.path.join(args.out, "fig1_progressions.png"), dpi=150)
        print("wrote fig1_progressions.png")

    # ---- Figure 2: shred clouds -------------------------------------------
    p = os.path.join(args.dir, "fig2_shreds.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        fig, ax = plt.subplots(figsize=(6, 6))
        owners = sorted({r["owner"] for r in rows})
        cmap = plt.get_cmap("tab20")
        for k, o in enumerate(owners):
            xs = [float(r["x"]) for r in rows if r["owner"] == o]
            ys = [float(r["y"]) for r in rows if r["owner"] == o]
            ax.scatter(xs, ys, s=4, color=cmap(k % 20), label=None)
            ax.scatter([sum(xs) / len(xs)], [sum(ys) / len(ys)], marker="s",
                       s=60, facecolors="none", edgecolors="red")
        ax.set_aspect("equal")
        ax.set_title("Figure 2: shred clouds (dots) and macro anchors "
                     "(red squares)")
        fig.tight_layout()
        fig.savefig(os.path.join(args.out, "fig2_shreds.png"), dpi=150)
        print("wrote fig2_shreds.png")

    # ---- Figure 3: scalability --------------------------------------------
    p = os.path.join(args.dir, "fig3_scalability.csv")
    if os.path.exists(p):
        rows = read_csv(p)
        nets = [float(r["nets"]) for r in rows]
        fig, ax1 = plt.subplots(figsize=(7, 4.5))
        ax1.plot(nets, [float(r["final_lambda"]) for r in rows], "r-o",
                 label="final lambda")
        ax1.set_xlabel("number of nets")
        ax1.set_ylabel("final lambda", color="r")
        ax1.set_xscale("log")
        ax1.set_ylim(bottom=0)
        ax2 = ax1.twinx()
        ax2.plot(nets, [float(r["iterations"]) for r in rows], "b--s",
                 label="iterations")
        ax2.set_ylabel("global placement iterations", color="b")
        ax2.set_ylim(bottom=0)
        ax1.set_title("Figure 3: final lambda and iteration count vs size")
        fig.tight_layout()
        fig.savefig(os.path.join(args.out, "fig3_scalability.png"), dpi=150)
        print("wrote fig3_scalability.png")


if __name__ == "__main__":
    sys.exit(main())
