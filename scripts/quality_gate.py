#!/usr/bin/env python3
"""Paired statistical quality gate for the known-optimum benchmark fleet.

Consumes fleet runs written by `complx_fleet` (src/gen/fleet.h) and decides
whether a candidate build's placement quality regressed relative to a
baseline, chess-engine-SPRT style:

  * Both runs place the SAME seeded designs (pairable by design name), so
    per-design suboptimality-ratio differences d_i = ratio_cand - ratio_base
    are paired samples with no between-design variance.
  * Differences within a relative tolerance EPS are ties and are dropped
    (the placer is bitwise deterministic, so a no-op change yields all ties).
  * The signs of the remaining differences feed Wald's SPRT for a Bernoulli
    proportion: H0: P(worse) = 0.5 (no systematic regression) versus
    H1: P(worse) = P1 (systematic regression; default 0.9), with error
    budgets ALPHA (false reject when there is no regression, default 0.05)
    and BETA (missed regression, default 0.10).

      LLR = n_worse * ln(P1/0.5) + n_better * ln((1-P1)/0.5)
      reject (regression)  when LLR >= ln((1-BETA)/ALPHA)
      accept (no worse)    when LLR <= ln(BETA/(1-ALPHA))
      inconclusive         otherwise (add designs/seeds and rerun)

  * An all-ties comparison accepts: identical quality is not a regression.
  * A candidate with more illegal placements than the baseline rejects
    unconditionally — an illegal record voids its ratio >= 1 certificate.

Subcommands:
  compare  --baseline a.json --candidate b.json   (exit 0 accept,
           1 reject, 2 inconclusive, 3 usage/schema error)
  append   --run run.json --trajectory BENCH_quality.json
           merge one run into the repo-root trajectory file
  check    --trajectory BENCH_quality.json [--min-designs 20]
           validate the committed trajectory (schema, >= N designs in the
           latest run, every ratio >= 1 and legal)
  warm     --cold cold.json --warm warm.json [--min-speedup 1.5]
           gate a warm-started rerun against the cold run that seeded its
           experience store: every paired design must actually warm-start,
           the summed solver iterations must drop by >= the speedup factor,
           and quality (the paired SPRT above, cold as baseline) must not
           REJECT — resuming from your own converged placement must save
           work without costing wirelength. Exit codes match `compare`.

Used by `ctest -L quality` and the quality-gate CI job; the math is unit
tested by scripts/test_quality_gate.py. Schema notes: docs/BENCHMARKS.md.
"""

import argparse
import datetime
import json
import math
import sys

ALPHA = 0.05  # false-reject probability when the candidate is not worse
BETA = 0.10   # miss probability when the candidate is worse at rate P1
P1 = 0.9      # H1: probability a paired design gets worse under a regression
EPS = 1e-4    # relative ratio difference treated as a tie

ACCEPT, REJECT, INCONCLUSIVE = "accept", "reject", "inconclusive"


def sprt_bounds(alpha=ALPHA, beta=BETA):
    """Wald decision thresholds (lower, upper) for the log-likelihood ratio."""
    return math.log(beta / (1.0 - alpha)), math.log((1.0 - beta) / alpha)


def sprt_sign_test(n_worse, n_better, alpha=ALPHA, beta=BETA, p1=P1):
    """SPRT on the sign of paired differences (ties already dropped).

    Returns (decision, llr, lower_bound, upper_bound); decision is one of
    ACCEPT / REJECT / INCONCLUSIVE.
    """
    if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
        raise ValueError("alpha and beta must be in (0, 1)")
    if not 0.5 < p1 < 1.0:
        raise ValueError("p1 must be in (0.5, 1.0)")
    lower, upper = sprt_bounds(alpha, beta)
    llr = n_worse * math.log(p1 / 0.5) + n_better * math.log((1.0 - p1) / 0.5)
    if llr >= upper:
        return REJECT, llr, lower, upper
    if llr <= lower:
        return ACCEPT, llr, lower, upper
    return INCONCLUSIVE, llr, lower, upper


def load_run(path):
    with open(path, "r", encoding="utf-8") as f:
        run = json.load(f)
    if run.get("kind") != "peko_fleet_run" or run.get("schema_version") != 1:
        raise ValueError(f"{path}: not a schema-version-1 peko_fleet_run")
    if not run.get("designs"):
        raise ValueError(f"{path}: run contains no designs")
    return run


def pair_records(baseline, candidate):
    """Pairs designs by name; raises ValueError when the lists differ."""
    base = {d["name"]: d for d in baseline["designs"]}
    cand = {d["name"]: d for d in candidate["designs"]}
    if set(base) != set(cand):
        missing = sorted(set(base) ^ set(cand))
        raise ValueError(
            "baseline and candidate ran different designs; the paired test "
            f"needs identical seeded fleets (mismatch: {missing[:6]}...)")
    return [(base[n], cand[n]) for n in sorted(base)]


def compare_runs(baseline, candidate, alpha=ALPHA, beta=BETA, p1=P1, eps=EPS):
    """Full gate decision for two loaded runs. Returns a result dict."""
    pairs = pair_records(baseline, candidate)
    illegal_base = sum(1 for b, _ in pairs if not b.get("legal", False))
    illegal_cand = sum(1 for _, c in pairs if not c.get("legal", False))
    n_worse = n_better = n_tie = 0
    worst = None
    for b, c in pairs:
        diff = c["ratio"] - b["ratio"]
        if abs(diff) <= eps * b["ratio"]:
            n_tie += 1
        elif diff > 0:
            n_worse += 1
            if worst is None or diff > worst[1]:
                worst = (b["name"], diff)
        else:
            n_better += 1

    if illegal_cand > illegal_base:
        decision, llr, lower, upper = REJECT, None, *sprt_bounds(alpha, beta)
        reason = (f"candidate produced {illegal_cand} illegal placements "
                  f"(baseline: {illegal_base}); ratio certificates void")
    elif n_worse == 0 and n_better == 0:
        decision, llr, lower, upper = ACCEPT, 0.0, *sprt_bounds(alpha, beta)
        reason = f"all {n_tie} paired ratios tie within eps={eps:g}"
    else:
        decision, llr, lower, upper = sprt_sign_test(
            n_worse, n_better, alpha, beta, p1)
        reason = (f"SPRT sign test: {n_worse} worse / {n_better} better / "
                  f"{n_tie} ties; llr={llr:.3f} vs [{lower:.3f}, {upper:.3f}]")
        if decision == INCONCLUSIVE:
            reason += " — add designs/seeds and rerun"
    return {
        "decision": decision,
        "reason": reason,
        "pairs": len(pairs),
        "worse": n_worse,
        "better": n_better,
        "ties": n_tie,
        "llr": llr,
        "bounds": [lower, upper],
        "alpha": alpha,
        "beta": beta,
        "p1": p1,
        "eps": eps,
        "worst_regression": worst,
        "illegal": {"baseline": illegal_base, "candidate": illegal_cand},
        "geomean_ratio": {
            "baseline": baseline["summary"]["geomean_ratio"],
            "candidate": candidate["summary"]["geomean_ratio"],
        },
    }


def cmd_compare(args):
    baseline = load_run(args.baseline)
    candidate = load_run(args.candidate)
    result = compare_runs(baseline, candidate, args.alpha, args.beta,
                          args.p1, args.eps)
    print(json.dumps(result, indent=2))
    verdict = result["decision"]
    print(f"quality gate: {verdict.upper()} — {result['reason']}",
          file=sys.stderr)
    if verdict == REJECT:
        return 1
    if verdict == INCONCLUSIVE:
        return 2
    return 0


def warm_gate(cold, warm, min_speedup=1.5, alpha=ALPHA, beta=BETA, p1=P1,
              eps=EPS):
    """Warm-vs-cold gate for a fleet rerun on exact-repeat designs.

    Three conditions, all required for ACCEPT:
      1. every paired design in the warm run reports warm_started (an exact
         repeat that misses the store means the hash or the store broke);
      2. total solver iterations dropped by >= min_speedup;
      3. the paired quality SPRT (cold as baseline) does not REJECT.
    Returns a result dict shaped like compare_runs with extra warm fields.
    """
    pairs = pair_records(cold, warm)
    cold_started_warm = [b["name"] for b, _ in pairs
                         if b.get("warm_started", False)]
    missed = [c["name"] for _, c in pairs if not c.get("warm_started", False)]
    cold_iters = sum(b["iterations"] for b, _ in pairs)
    warm_iters = sum(c["iterations"] for _, c in pairs)
    speedup = (float(cold_iters) / float(warm_iters)
               if warm_iters > 0 else math.inf)

    quality = compare_runs(cold, warm, alpha, beta, p1, eps)
    problems = []
    if cold_started_warm:
        problems.append(
            f"cold run has warm-started designs ({cold_started_warm[:4]}) — "
            "it is not a cold baseline")
    if missed:
        problems.append(
            f"{len(missed)} design(s) did not warm-start ({missed[:4]}): "
            "exact repeats must hit the experience store")
    if speedup < min_speedup:
        problems.append(
            f"iteration speedup {speedup:.2f}x < required {min_speedup:g}x "
            f"({cold_iters} cold vs {warm_iters} warm)")
    if quality["decision"] == REJECT:
        problems.append(f"quality gate rejected: {quality['reason']}")

    if problems:
        decision, reason = REJECT, "; ".join(problems)
    elif quality["decision"] == INCONCLUSIVE:
        decision = INCONCLUSIVE
        reason = (f"speedup {speedup:.2f}x ok, but quality is inconclusive: "
                  f"{quality['reason']}")
    else:
        decision = ACCEPT
        reason = (f"all {len(pairs)} designs warm-started; iterations "
                  f"{cold_iters} -> {warm_iters} ({speedup:.2f}x >= "
                  f"{min_speedup:g}x); quality: {quality['reason']}")
    return {
        "decision": decision,
        "reason": reason,
        "pairs": len(pairs),
        "missed_warm_starts": missed,
        "iterations": {"cold": cold_iters, "warm": warm_iters},
        "speedup": speedup,
        "min_speedup": min_speedup,
        "quality": quality,
    }


def cmd_warm(args):
    cold = load_run(args.cold)
    warm = load_run(args.warm)
    result = warm_gate(cold, warm, args.min_speedup, args.alpha, args.beta,
                       args.p1, args.eps)
    print(json.dumps(result, indent=2))
    verdict = result["decision"]
    print(f"warm-start gate: {verdict.upper()} — {result['reason']}",
          file=sys.stderr)
    if verdict == REJECT:
        return 1
    if verdict == INCONCLUSIVE:
        return 2
    return 0


def cmd_append(args):
    run = load_run(args.run)
    run["date"] = args.date or datetime.date.today().isoformat()
    if args.note:
        run["note"] = args.note
    try:
        with open(args.trajectory, "r", encoding="utf-8") as f:
            trajectory = json.load(f)
        if trajectory.get("schema_version") != 1 or "runs" not in trajectory:
            raise ValueError(f"{args.trajectory}: not a trajectory file")
    except FileNotFoundError:
        trajectory = {
            "schema_version": 1,
            "benchmark": "peko-known-optimum-fleet",
            "runs": [],
        }
    trajectory["runs"].append(run)
    with open(args.trajectory, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=1)
        f.write("\n")
    print(f"appended run '{run['label']}' ({len(run['designs'])} designs) "
          f"-> {args.trajectory} ({len(trajectory['runs'])} runs)")
    return 0


def cmd_check(args):
    with open(args.trajectory, "r", encoding="utf-8") as f:
        trajectory = json.load(f)
    if trajectory.get("schema_version") != 1 or not trajectory.get("runs"):
        print(f"{args.trajectory}: missing schema_version/runs",
              file=sys.stderr)
        return 1
    latest = trajectory["runs"][-1]
    designs = latest.get("designs", [])
    problems = []
    if len(designs) < args.min_designs:
        problems.append(
            f"latest run has {len(designs)} designs < {args.min_designs}")
    for d in designs:
        for field in ("name", "seed", "cells", "hpwl", "optimum_hpwl",
                      "ratio", "overflow_percent", "wall_s"):
            if field not in d:
                problems.append(f"{d.get('name', '?')}: missing '{field}'")
                break
        else:
            if not d.get("legal", False):
                problems.append(f"{d['name']}: not legal")
            if d["ratio"] < 1.0:
                problems.append(
                    f"{d['name']}: ratio {d['ratio']} < 1 — impossible "
                    "against a true optimum; the record is corrupt")
            if abs(d["ratio"] * d["optimum_hpwl"] - d["hpwl"]) > \
                    1e-9 * max(1.0, d["hpwl"]):
                problems.append(f"{d['name']}: ratio inconsistent with "
                                "hpwl/optimum_hpwl")
    if problems:
        for p in problems:
            print(f"check: {p}", file=sys.stderr)
        return 1
    print(f"{args.trajectory}: OK — {len(trajectory['runs'])} runs, latest "
          f"'{latest.get('label')}' with {len(designs)} designs, geomean "
          f"ratio {latest['summary']['geomean_ratio']:.4f}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="paired SPRT gate on two fleet runs")
    p.add_argument("--baseline", required=True)
    p.add_argument("--candidate", required=True)
    p.add_argument("--alpha", type=float, default=ALPHA)
    p.add_argument("--beta", type=float, default=BETA)
    p.add_argument("--p1", type=float, default=P1)
    p.add_argument("--eps", type=float, default=EPS)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("warm",
                       help="gate a warm-started rerun against its cold run")
    p.add_argument("--cold", required=True)
    p.add_argument("--warm", required=True)
    p.add_argument("--min-speedup", type=float, default=1.5)
    p.add_argument("--alpha", type=float, default=ALPHA)
    p.add_argument("--beta", type=float, default=BETA)
    p.add_argument("--p1", type=float, default=P1)
    p.add_argument("--eps", type=float, default=EPS)
    p.set_defaults(func=cmd_warm)

    p = sub.add_parser("append", help="append a run to the trajectory file")
    p.add_argument("--run", required=True)
    p.add_argument("--trajectory", required=True)
    p.add_argument("--date", default=None)
    p.add_argument("--note", default=None)
    p.set_defaults(func=cmd_append)

    p = sub.add_parser("check", help="validate the committed trajectory")
    p.add_argument("--trajectory", required=True)
    p.add_argument("--min-designs", type=int, default=20)
    p.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
