#!/usr/bin/env bash
# Scaling-trajectory smoke: runs bench_scale (AoS replica vs the library's
# SoA/CSR layout) at a ladder of design sizes, each layout in its own
# process (VmHWM is a process-lifetime high-water mark), optionally folds in
# the 1M-cell bench_micro CPU-time A/B, and composes BENCH_scale.json.
#
# Derived ratios are computed from the measured numbers, nothing else; the
# JSON records exactly what the binaries printed. Wall-clock kernel times on
# shared/1-vCPU runners are noisy — bench_scale already takes the min over
# --reps runs, and the bench_micro section (steal-resistant CPU time) is the
# authoritative speedup number when present.
#
# Usage: scripts/run_scaling_smoke.sh [build-dir] [out.json]
#   SIZES="50000 200000 1000000"  size ladder (cells)
#   REPS=7                        kernel repetitions per bench_scale run
#   WITH_MICRO=1                  also run bench_micro at 1M (CPU time)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_scale.json"}
sizes=${SIZES:-"50000 200000 1000000"}
reps=${REPS:-7}
with_micro=${WITH_MICRO:-1}

scale_bin="$build/bench/bench_scale"
micro_bin="$build/bench/bench_micro"
[ -x "$scale_bin" ] || { echo "run_scaling_smoke: $scale_bin not built" >&2; exit 2; }

runs_file=$(mktemp)
micro_file=$(mktemp)
trap 'rm -f "$runs_file" "$micro_file"' EXIT

for n in $sizes; do
  for layout in aos soa; do
    echo "bench_scale --cells $n --layout $layout --reps $reps" >&2
    "$scale_bin" --cells "$n" --layout "$layout" --reps "$reps" >> "$runs_file"
  done
done

if [ "$with_micro" = "1" ] && [ -x "$micro_bin" ]; then
  echo "bench_micro A/B at 1M cells (CPU time, 5 repetitions)" >&2
  "$micro_bin" \
    --benchmark_filter='(B2bAssembly|DensityDeposit)(Aos|Soa)/1000000' \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$micro_file"
fi

python3 - "$runs_file" "$micro_file" "$out" <<'PY'
import json, sys

runs_path, micro_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
runs = [json.loads(line) for line in open(runs_path) if line.strip()]

doc = {
    "bench": "netlist scaling trajectory: AoS baseline replica vs SoA/CSR",
    "kernels": "B2B net-model assembly (x axis) + density deposit",
    "method": (
        "bench_scale: min kernel time over --reps runs, one process per "
        "layout; netlist_bytes is allocator-charged capacity; bench_micro: "
        "google-benchmark CPU time, mean over 5 repetitions"
    ),
    "runs": runs,
}

by_key = {(r["layout"], r["cells"]): r for r in runs}
ratios = []
for layout, cells in sorted(by_key):
    if layout != "aos" or ("soa", cells) not in by_key:
        continue
    aos, soa = by_key[("aos", cells)], by_key[("soa", cells)]
    kern_aos = aos["b2b_assembly_s"] + aos["density_deposit_s"]
    kern_soa = soa["b2b_assembly_s"] + soa["density_deposit_s"]
    ratios.append({
        "cells": cells,
        "checksums_bitwise_equal": aos["checksum"] == soa["checksum"],
        "netlist_bytes_ratio": round(aos["netlist_bytes"] / soa["netlist_bytes"], 3),
        "peak_rss_ratio": round(aos["peak_rss_bytes"] / soa["peak_rss_bytes"], 3)
        if soa["peak_rss_bytes"] else None,
        "b2b_assembly_speedup_wall": round(aos["b2b_assembly_s"] / soa["b2b_assembly_s"], 3),
        "density_deposit_speedup_wall": round(aos["density_deposit_s"] / soa["density_deposit_s"], 3),
        "combined_kernel_speedup_wall": round(kern_aos / kern_soa, 3),
    })
doc["ratios_aos_over_soa"] = ratios

try:
    micro = json.load(open(micro_path))
except (ValueError, OSError):
    micro = None
if micro:
    means = {
        b["run_name"]: b["cpu_time"]
        for b in micro.get("benchmarks", [])
        if b.get("aggregate_name") == "mean"
    }
    def mean(name):
        return means.get(f"BM_{name}/1000000")
    b2b_aos, b2b_soa = mean("B2bAssemblyAos"), mean("B2bAssemblySoa")
    dep_aos, dep_soa = mean("DensityDepositAos"), mean("DensityDepositSoa")
    if None not in (b2b_aos, b2b_soa, dep_aos, dep_soa):
        doc["micro_1m_cpu"] = {
            "unit": micro["benchmarks"][0].get("time_unit", "ms"),
            "b2b_assembly_aos": round(b2b_aos, 3),
            "b2b_assembly_soa": round(b2b_soa, 3),
            "density_deposit_aos": round(dep_aos, 3),
            "density_deposit_soa": round(dep_soa, 3),
            "b2b_assembly_speedup": round(b2b_aos / b2b_soa, 3),
            "density_deposit_speedup": round(dep_aos / dep_soa, 3),
            "combined_kernel_speedup": round((b2b_aos + dep_aos) / (b2b_soa + dep_soa), 3),
        }

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY
