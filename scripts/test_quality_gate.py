#!/usr/bin/env python3
"""Unit tests for the gate math in scripts/quality_gate.py.

Run directly (python3 scripts/test_quality_gate.py) or via
`ctest -L quality` (test name: quality_gate_unit). The synthetic-sample
tests are the contract the documented alpha/beta claim rests on: known
better / worse / equal paired distributions must produce accept / reject /
accept, and the Monte-Carlo error rates must respect the Wald bounds.
"""

import json
import math
import os
import random
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import quality_gate as qg


def make_run(ratios, label="run", legal=None, names=None, iterations=None,
             warm_started=False):
    """A minimal schema-1 fleet run with the given suboptimality ratios."""
    designs = []
    for k, r in enumerate(ratios):
        designs.append({
            "name": names[k] if names else f"d{k}",
            "seed": k + 1,
            "cells": 256,
            "hpwl": 1000.0 * r,
            "optimum_hpwl": 1000.0,
            "ratio": r,
            "overflow_percent": 0.0,
            "legal": legal[k] if legal else True,
            "iterations": iterations[k] if iterations else 12,
            "warm_started": warm_started,
            "wall_s": 0.0,
        })
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {
        "schema_version": 1,
        "kind": "peko_fleet_run",
        "label": label,
        "preset": "test",
        "config": {},
        "designs": designs,
        "summary": {"designs": len(designs), "illegal": 0,
                    "geomean_ratio": geomean, "max_ratio": max(ratios),
                    "mean_overflow_percent": 0.0, "total_wall_s": 0.0},
    }


class SprtMathTest(unittest.TestCase):
    def test_bounds_are_the_wald_thresholds(self):
        lower, upper = qg.sprt_bounds(alpha=0.05, beta=0.10)
        self.assertAlmostEqual(upper, math.log(0.90 / 0.05))
        self.assertAlmostEqual(lower, math.log(0.10 / 0.95))

    def test_uniformly_worse_rejects(self):
        decision, llr, _, upper = qg.sprt_sign_test(20, 0)
        self.assertEqual(decision, qg.REJECT)
        self.assertGreaterEqual(llr, upper)

    def test_uniformly_better_accepts(self):
        decision, llr, lower, _ = qg.sprt_sign_test(0, 20)
        self.assertEqual(decision, qg.ACCEPT)
        self.assertLessEqual(llr, lower)

    def test_tiny_sample_is_inconclusive(self):
        # 1/1: llr = ln(1.8) - ln(5) ~ -1.02, inside (-2.25, 2.89).
        decision, _, _, _ = qg.sprt_sign_test(1, 1)
        self.assertEqual(decision, qg.INCONCLUSIVE)

    def test_balanced_larger_sample_accepts(self):
        # "Better" evidence weighs |ln(0.2)| ~ 1.61 against ln(1.8) ~ 0.59
        # per "worse", so a 50/50 split drifts toward accept — exactly the
        # H0 (no systematic regression) behavior we want.
        decision, _, _, _ = qg.sprt_sign_test(3, 3)
        self.assertEqual(decision, qg.ACCEPT)

    def test_minimum_evidence_to_reject(self):
        # With alpha=0.05, beta=0.10, p1=0.9 a clean regression needs
        # ceil(ln(18)/ln(1.8)) = 5 consecutive worse pairs.
        self.assertEqual(qg.sprt_sign_test(4, 0)[0], qg.INCONCLUSIVE)
        self.assertEqual(qg.sprt_sign_test(5, 0)[0], qg.REJECT)

    def test_invalid_parameters_raise(self):
        with self.assertRaises(ValueError):
            qg.sprt_sign_test(1, 1, alpha=0.0)
        with self.assertRaises(ValueError):
            qg.sprt_sign_test(1, 1, p1=0.4)

    def test_monte_carlo_error_rates_respect_wald_bounds(self):
        # Empirical check of the documented error budgets on sequences of
        # 40 paired signs: under H0 (fair coin) the reject rate must stay
        # below ~alpha; under H1 (worse with probability p1=0.9) the
        # accept/miss rate must stay below ~beta. Wald's bounds are
        # approximate for truncated sequences, hence the 1.5x slack.
        rng = random.Random(12345)
        trials = 2000

        def run_trial(p_worse):
            worse = better = 0
            for _ in range(40):
                if rng.random() < p_worse:
                    worse += 1
                else:
                    better += 1
                decision, _, _, _ = qg.sprt_sign_test(worse, better)
                if decision != qg.INCONCLUSIVE:
                    return decision
            return qg.INCONCLUSIVE

        false_rejects = sum(run_trial(0.5) == qg.REJECT
                            for _ in range(trials)) / trials
        misses = sum(run_trial(0.9) != qg.REJECT
                     for _ in range(trials)) / trials
        self.assertLess(false_rejects, qg.ALPHA * 1.5)
        self.assertLess(misses, qg.BETA * 1.5)


class CompareRunsTest(unittest.TestCase):
    def test_identical_runs_accept_on_all_ties(self):
        base = make_run([1.5, 1.6, 1.7, 1.8])
        result = qg.compare_runs(base, make_run([1.5, 1.6, 1.7, 1.8]))
        self.assertEqual(result["decision"], qg.ACCEPT)
        self.assertEqual(result["ties"], 4)
        self.assertEqual(result["worse"], 0)

    def test_sub_eps_noise_counts_as_ties(self):
        base = make_run([1.5] * 6)
        cand = make_run([1.5 * (1.0 + 1e-7)] * 6)
        result = qg.compare_runs(base, cand)
        self.assertEqual(result["decision"], qg.ACCEPT)
        self.assertEqual(result["ties"], 6)

    def test_clear_regression_rejects(self):
        base = make_run([1.5] * 20)
        cand = make_run([1.9] * 20)
        result = qg.compare_runs(base, cand)
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertEqual(result["worse"], 20)

    def test_clear_improvement_accepts(self):
        base = make_run([1.9] * 20)
        cand = make_run([1.5] * 20)
        result = qg.compare_runs(base, cand)
        self.assertEqual(result["decision"], qg.ACCEPT)
        self.assertEqual(result["better"], 20)

    def test_mixed_weak_evidence_is_inconclusive(self):
        # 3 worse, 1 better, 4 ties: llr = 3 ln 1.8 + ln 0.2 ~ +0.15 —
        # inside the Wald bounds, so the gate asks for more data.
        ratios = [1.5] * 8
        jitter = [1.51] * 3 + [1.49] + [1.5] * 4
        result = qg.compare_runs(make_run(ratios), make_run(jitter))
        self.assertEqual(result["decision"], qg.INCONCLUSIVE)

    def test_partial_regression_still_rejects(self):
        # 14 worse, 2 better, 4 ties — evidence should dominate.
        base = make_run([1.5] * 20)
        cand_ratios = [1.8] * 14 + [1.4] * 2 + [1.5] * 4
        result = qg.compare_runs(base, make_run(cand_ratios))
        self.assertEqual(result["decision"], qg.REJECT)

    def test_new_illegal_placements_reject(self):
        base = make_run([1.5] * 6)
        cand = make_run([1.5] * 6, legal=[True] * 5 + [False])
        result = qg.compare_runs(base, cand)
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertIn("illegal", result["reason"])

    def test_mismatched_design_lists_raise(self):
        base = make_run([1.5, 1.6])
        cand = make_run([1.5, 1.6], names=["d0", "other"])
        with self.assertRaises(ValueError):
            qg.compare_runs(base, cand)


class WarmGateTest(unittest.TestCase):
    def cold_run(self, n=10, iters=12):
        return make_run([1.5] * n, label="cold", iterations=[iters] * n)

    def warm_run(self, n=10, iters=4, ratios=None, warm_started=True):
        return make_run(ratios or [1.5] * n, label="warm",
                        iterations=[iters] * n, warm_started=warm_started)

    def test_good_warm_rerun_accepts(self):
        result = qg.warm_gate(self.cold_run(), self.warm_run())
        self.assertEqual(result["decision"], qg.ACCEPT)
        self.assertAlmostEqual(result["speedup"], 3.0)
        self.assertEqual(result["missed_warm_starts"], [])

    def test_insufficient_speedup_rejects(self):
        result = qg.warm_gate(self.cold_run(iters=12),
                              self.warm_run(iters=10))
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertIn("speedup", result["reason"])

    def test_missed_warm_start_rejects(self):
        result = qg.warm_gate(self.cold_run(),
                              self.warm_run(warm_started=False))
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertEqual(len(result["missed_warm_starts"]), 10)

    def test_warm_baseline_is_not_a_cold_baseline(self):
        # Handing the gate two warm runs must fail loudly, not accept.
        warm_as_cold = self.warm_run(iters=12)
        result = qg.warm_gate(warm_as_cold, self.warm_run())
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertIn("not a cold baseline", result["reason"])

    def test_quality_regression_rejects_despite_speedup(self):
        n = 20
        result = qg.warm_gate(
            self.cold_run(n=n),
            self.warm_run(n=n, ratios=[1.9] * n))
        self.assertEqual(result["decision"], qg.REJECT)
        self.assertIn("quality gate rejected", result["reason"])

    def test_custom_min_speedup(self):
        result = qg.warm_gate(self.cold_run(iters=12),
                              self.warm_run(iters=10), min_speedup=1.1)
        self.assertEqual(result["decision"], qg.ACCEPT)


class CliTest(unittest.TestCase):
    """End-to-end exit-code contract of the script itself."""

    def run_gate(self, *argv):
        script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "quality_gate.py")
        return subprocess.run([sys.executable, script, *argv],
                              capture_output=True, text=True).returncode

    def test_compare_exit_codes(self):
        with tempfile.TemporaryDirectory() as d:
            paths = {}
            for name, ratios in [("base", [1.5] * 20), ("same", [1.5] * 20),
                                 ("worse", [2.0] * 20)]:
                paths[name] = os.path.join(d, name + ".json")
                with open(paths[name], "w") as f:
                    json.dump(make_run(ratios, label=name), f)
            self.assertEqual(self.run_gate(
                "compare", "--baseline", paths["base"],
                "--candidate", paths["same"]), 0)
            self.assertEqual(self.run_gate(
                "compare", "--baseline", paths["base"],
                "--candidate", paths["worse"]), 1)
            self.assertEqual(self.run_gate(
                "compare", "--baseline", paths["base"],
                "--candidate", os.path.join(d, "missing.json")), 3)

    def test_warm_exit_codes(self):
        with tempfile.TemporaryDirectory() as d:
            cold = os.path.join(d, "cold.json")
            warm = os.path.join(d, "warm.json")
            slow = os.path.join(d, "slow.json")
            with open(cold, "w") as f:
                json.dump(make_run([1.5] * 10, iterations=[12] * 10), f)
            with open(warm, "w") as f:
                json.dump(make_run([1.5] * 10, iterations=[4] * 10,
                                   warm_started=True), f)
            with open(slow, "w") as f:
                json.dump(make_run([1.5] * 10, iterations=[11] * 10,
                                   warm_started=True), f)
            self.assertEqual(self.run_gate(
                "warm", "--cold", cold, "--warm", warm), 0)
            self.assertEqual(self.run_gate(
                "warm", "--cold", cold, "--warm", slow), 1)
            self.assertEqual(self.run_gate(
                "warm", "--cold", cold, "--warm",
                os.path.join(d, "missing.json")), 3)

    def test_append_then_check_roundtrip(self):
        with tempfile.TemporaryDirectory() as d:
            run_path = os.path.join(d, "run.json")
            traj_path = os.path.join(d, "traj.json")
            with open(run_path, "w") as f:
                json.dump(make_run([1.5] * 20), f)
            self.assertEqual(self.run_gate(
                "append", "--run", run_path, "--trajectory", traj_path,
                "--date", "2026-08-07"), 0)
            self.assertEqual(self.run_gate(
                "check", "--trajectory", traj_path, "--min-designs", "20"), 0)
            # Too few designs must fail the check.
            with open(run_path, "w") as f:
                json.dump(make_run([1.5] * 3), f)
            traj2 = os.path.join(d, "traj2.json")
            self.run_gate("append", "--run", run_path, "--trajectory", traj2)
            self.assertEqual(self.run_gate(
                "check", "--trajectory", traj2, "--min-designs", "20"), 1)

    def test_check_rejects_ratio_below_one(self):
        with tempfile.TemporaryDirectory() as d:
            run = make_run([1.5] * 19 + [0.98])
            traj_path = os.path.join(d, "traj.json")
            run_path = os.path.join(d, "run.json")
            with open(run_path, "w") as f:
                json.dump(run, f)
            self.run_gate("append", "--run", run_path,
                          "--trajectory", traj_path)
            self.assertEqual(self.run_gate(
                "check", "--trajectory", traj_path), 1)


if __name__ == "__main__":
    unittest.main()
