#!/usr/bin/env bash
# Check-only clang-format over the tracked C++ sources (.clang-format at the
# repo root). Never rewrites anything; lists the offending files and exits 1.
# Skipped gracefully when clang-format is not installed.
set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check-format: clang-format not installed — skipped"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.h' '*.hpp' '*.cc')
bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [ "$bad" -eq 0 ]; then
  echo "check-format: ${#files[@]} files clean"
fi
exit "$bad"
