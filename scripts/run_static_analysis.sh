#!/usr/bin/env bash
# Full static-analysis sweep: complx-lint (always), clang-tidy and cppcheck
# (when installed — both are skipped gracefully so the script is useful on
# minimal containers and strict in CI, which installs them).
#
#   scripts/run_static_analysis.sh [build-dir]
#
# Exits nonzero iff any tool that actually ran reported a problem. A
# machine-readable summary is printed last:
#   static-analysis: complx_lint=pass clang_tidy=skip cppcheck=skip
set -u
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

status_lint=skip status_tidy=skip status_cppcheck=skip
fail=0

# --- 1. complx-lint (built from tools/complx_lint, needs the build tree) ---
LINT_BIN="$BUILD_DIR/tools/complx_lint/complx_lint"
if [ ! -x "$LINT_BIN" ]; then
  echo "== building complx_lint =="
  cmake -B "$BUILD_DIR" -S . >/dev/null && \
    cmake --build "$BUILD_DIR" --target complx_lint -j >/dev/null
fi
if [ -x "$LINT_BIN" ]; then
  echo "== complx-lint =="
  # Incremental cache (unchanged files replay their cached summaries; CI
  # restores it across runs) plus both report formats: JSON for humans and
  # scripts, SARIF 2.1.0 for the code-scanning upload.
  if "$LINT_BIN" --cache "$BUILD_DIR/.complx_lint.cache" --stats \
       --json "$BUILD_DIR/complx_lint.json" \
       --sarif "$BUILD_DIR/complx_lint.sarif" src apps; then
    status_lint=pass
  else
    status_lint=fail; fail=1
  fi
else
  echo "error: could not build complx_lint" >&2
  status_lint=fail; fail=1
fi

# --- 2. clang-tidy over the library sources (needs compile_commands.json) --
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null
  fi
  echo "== clang-tidy =="
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'apps/*.cpp')
  if clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}" \
       > "$BUILD_DIR/clang_tidy.log" 2>/dev/null; then
    status_tidy=pass
  else
    status_tidy=fail; fail=1
  fi
  grep -E "warning:|error:" "$BUILD_DIR/clang_tidy.log" | head -50 || true
else
  echo "== clang-tidy not installed — skipped =="
fi

# --- 3. cppcheck (optional) ------------------------------------------------
if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  if cppcheck --enable=warning,performance,portability --inline-suppr \
       --error-exitcode=1 --quiet --suppress=missingIncludeSystem \
       -I src src apps 2> "$BUILD_DIR/cppcheck.log"; then
    status_cppcheck=pass
  else
    status_cppcheck=fail; fail=1
  fi
  cat "$BUILD_DIR/cppcheck.log"
else
  echo "== cppcheck not installed — skipped =="
fi

echo "static-analysis: complx_lint=$status_lint clang_tidy=$status_tidy cppcheck=$status_cppcheck"
exit "$fail"
