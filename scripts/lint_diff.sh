#!/usr/bin/env bash
# Incremental lint for the edit loop: run complx-lint on only the files
# changed relative to a base ref (default origin/main, falling back to
# main, falling back to HEAD), reusing the shared incremental cache so a
# warm invocation costs milliseconds.
#
#   scripts/lint_diff.sh [base-ref] [build-dir]
#
# Exit codes follow complx_lint: 0 clean, 1 findings, 2 usage/tool error.
# With no lintable files changed the script exits 0 without running the
# tool.
#
# Recommended as a pre-commit hook:
#   ln -s ../../scripts/lint_diff.sh .git/hooks/pre-commit
# The hook then lints exactly what the commit touches; the cross-file
# passes (A1/A2/T1) still see the changed files' includes and call chains,
# and the full-tree sweep stays in CI (lint_repo / run_static_analysis.sh).
set -u
cd "$(dirname "$0")/.."

BASE_REF="${1:-}"
BUILD_DIR="${2:-build}"

if [ -z "$BASE_REF" ]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    BASE_REF=origin/main
  elif git rev-parse --verify --quiet main >/dev/null; then
    BASE_REF=main
  else
    BASE_REF=HEAD
  fi
fi

LINT_BIN="$BUILD_DIR/tools/complx_lint/complx_lint"
if [ ! -x "$LINT_BIN" ]; then
  echo "== building complx_lint =="
  cmake -B "$BUILD_DIR" -S . >/dev/null && \
    cmake --build "$BUILD_DIR" --target complx_lint -j >/dev/null
fi
if [ ! -x "$LINT_BIN" ]; then
  echo "error: could not build complx_lint" >&2
  exit 2
fi

# Changed + untracked C++ files, excluding deletions. The diff runs against
# the merge base so a stale origin/main never reports upstream edits.
mapfile -t changed < <(
  { git diff --name-only --diff-filter=d "$BASE_REF"...HEAD -- \
      '*.cpp' '*.h' 2>/dev/null ||
    git diff --name-only --diff-filter=d "$BASE_REF" -- '*.cpp' '*.h'; \
    git diff --name-only --diff-filter=d -- '*.cpp' '*.h'; \
    git ls-files --others --exclude-standard -- '*.cpp' '*.h'; } |
  sort -u)

lintable=()
for f in "${changed[@]}"; do
  [ -f "$f" ] || continue
  case "$f" in
    src/*|apps/*) lintable+=("$f") ;;
  esac
done

if [ "${#lintable[@]}" -eq 0 ]; then
  echo "lint-diff: no lintable changes vs $BASE_REF"
  exit 0
fi

echo "lint-diff: ${#lintable[@]} file(s) changed vs $BASE_REF"
exec "$LINT_BIN" --cache "$BUILD_DIR/.complx_lint.cache" --stats \
  "${lintable[@]}"
